"""Prometheus text exposition (version 0.0.4) rendering and a test parser.

:func:`render_prometheus` turns a :class:`~repro.obs.registry.MetricsRegistry`
into the plain-text format every Prometheus-compatible scraper consumes:
``# HELP`` / ``# TYPE`` headers per family, one sample line per series,
histogram families expanded into cumulative ``_bucket{le=...}`` samples
plus ``_sum`` and ``_count``, distributions exposed as summaries.  Output
is deterministic: families sort by name and series by label values, and
float formatting is locale-independent ``repr``.

:func:`parse_prometheus` is the minimal inverse used by the round-trip
tests — it understands exactly what the renderer emits (HELP/TYPE
comments, escaped label values, float samples) and nothing more.  It is
not a general scraper.
"""

from __future__ import annotations

import math

from repro.obs.registry import Counter, Distribution, Gauge, Histogram, MetricsRegistry

__all__ = ["parse_prometheus", "render_prometheus"]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_fragment(
    labelnames: tuple[str, ...],
    labelvalues: tuple[str, ...],
    extra: tuple[tuple[str, str], ...] = (),
) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in ``registry`` as Prometheus text exposition."""
    lines: list[str] = []
    for family in registry.collect():
        exposed_kind = {"distribution": "summary", "untyped": "untyped"}.get(family.kind, family.kind)
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {exposed_kind}")
        series = family.series()
        if isinstance(family, (Counter, Gauge)):
            for key, cell in series.items():
                fragment = _labels_fragment(family.labelnames, key)
                lines.append(f"{family.name}{fragment} {_format_value(cell.value)}")
        elif isinstance(family, Histogram):
            for key, state in series.items():
                cumulative = 0
                for bound, count in zip(family.buckets, state.counts):
                    cumulative += int(count)
                    fragment = _labels_fragment(
                        family.labelnames, key, extra=(("le", _format_value(bound)),)
                    )
                    lines.append(f"{family.name}_bucket{fragment} {cumulative}")
                total = cumulative + int(state.counts[-1])
                fragment = _labels_fragment(family.labelnames, key, extra=(("le", "+Inf"),))
                lines.append(f"{family.name}_bucket{fragment} {total}")
                plain = _labels_fragment(family.labelnames, key)
                lines.append(f"{family.name}_sum{plain} {_format_value(state.sum)}")
                lines.append(f"{family.name}_count{plain} {total}")
        elif isinstance(family, Distribution):
            for key, summary in series.items():
                plain = _labels_fragment(family.labelnames, key)
                lines.append(f"{family.name}_sum{plain} {_format_value(summary.mean * summary.count)}")
                lines.append(f"{family.name}_count{plain} {summary.count}")
    return "\n".join(lines) + "\n" if lines else ""


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(fragment: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(fragment):
        eq = fragment.index("=", i)
        name = fragment[i:eq].strip().lstrip(",").strip()
        assert fragment[eq + 1] == '"', f"malformed label fragment: {fragment!r}"
        j = eq + 2
        raw: list[str] = []
        while fragment[j] != '"':
            if fragment[j] == "\\":
                raw.append(fragment[j : j + 2])
                j += 2
            else:
                raw.append(fragment[j])
                j += 1
        labels[name] = _unescape_label_value("".join(raw))
        i = j + 1
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse renderer output back into ``{family: {type, help, samples}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)`` tuples in
    file order.  Only the subset of the format that
    :func:`render_prometheus` emits is supported.
    """
    families: dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": "", "samples": []})
            families[name]["help"] = help_text.replace("\\n", "\n").replace("\\\\", "\\")
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": "", "samples": []})
            families[name]["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            sample_name = line[: line.index("{")]
            closing = line.rindex("}")
            labels = _parse_labels(line[line.index("{") + 1 : closing])
            value = _parse_value(line[closing + 1 :].strip())
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
            value = _parse_value(value_text.strip())
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in families:
                base = base[: -len(suffix)]
                break
        families.setdefault(base, {"type": None, "help": "", "samples": []})
        families[base]["samples"].append((sample_name, labels, value))
    return families
