"""Deterministic span tracing with explicit cross-process parent carriers.

A :class:`Tracer` holds a bounded ring buffer of closed
:class:`SpanRecord`\\ s.  Spans are opened with the :meth:`Tracer.span`
context manager (or the module-level :func:`trace_span`, which targets the
process-global tracer); nesting within a thread is tracked through a
``contextvars`` slot, and crossing a process or thread boundary is done by
shipping the parent's :func:`current_context` carrier — a plain
``(trace_id, span_id)`` tuple, picklable by construction — and passing it
as ``parent=`` on the other side.  ``TaskRunner.map`` does exactly this for
its process backend, and ships the worker-side closed spans back inside
result envelopes for the parent tracer to :meth:`~Tracer.absorb`.

Determinism: span and trace ids come from a per-process monotone counter
prefixed with the pid (collision-free across pool workers, reproducible
within a process), and the clock is an injectable monotonic callable
(default :func:`time.monotonic`) so tests assert on exact durations with a
fake clock instead of sleeping.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.obs.registry import obs_enabled

__all__ = [
    "SpanContext",
    "SpanRecord",
    "Tracer",
    "current_context",
    "set_tracer",
    "trace_span",
    "tracer",
    "use_parent",
    "use_tracer",
]

#: Parent carrier: ``(trace_id, span_id)``.  Plain tuple so it crosses
#: pickle boundaries with zero ceremony.
SpanContext = tuple[str, str]

_CURRENT: ContextVar[SpanContext | None] = ContextVar("repro_obs_span", default=None)

_UNSET = object()


@dataclass
class SpanRecord:
    """One closed span."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    end: float
    attrs: dict = field(default_factory=dict)
    status: str = "ok"
    seq: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=payload["name"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start=payload["start"],
            end=payload["end"],
            attrs=dict(payload.get("attrs", {})),
            status=payload.get("status", "ok"),
        )


class _Span:
    """Live span handle yielded by :meth:`Tracer.span`."""

    __slots__ = ("name", "context", "parent_id", "attrs", "status")

    def __init__(self, name: str, context: SpanContext, parent_id: str | None, attrs: dict) -> None:
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"

    def set(self, **attrs: object) -> None:
        self.attrs.update(attrs)


class Tracer:
    """Bounded retention of closed spans plus journal fan-out."""

    def __init__(self, max_spans: int = 2048, clock: Callable[[], float] | None = None) -> None:
        self.clock = clock if clock is not None else time.monotonic
        self._ring: deque[SpanRecord] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._prefix = f"{os.getpid():x}"
        self._seq = 0
        self._journal = None

    # -- id allocation -----------------------------------------------------

    def _next_id(self) -> str:
        with self._lock:
            return f"{self._prefix}-{next(self._ids):x}"

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, parent: SpanContext | None | object = _UNSET, **attrs: object) -> Iterator[_Span | None]:
        """Open a span; closes (and records) when the block exits.

        ``parent`` defaults to the ambient span of the current task/thread;
        pass an explicit carrier (from :func:`current_context`) to attach
        across an execution boundary, or ``None`` to force a new root.
        When telemetry is disabled this yields ``None`` and records nothing.
        """
        if not obs_enabled():
            yield None
            return
        ambient = _CURRENT.get()
        chosen = ambient if parent is _UNSET else parent
        if chosen is None:
            trace_id = self._next_id()
            parent_id = None
        else:
            trace_id, parent_id = chosen
        span_id = self._next_id()
        handle = _Span(name, (trace_id, span_id), parent_id, dict(attrs))
        token = _CURRENT.set((trace_id, span_id))
        start = self.clock()
        try:
            yield handle
        except BaseException:
            handle.status = "error"
            raise
        finally:
            end = self.clock()
            _CURRENT.reset(token)
            self._close(handle, start, end)

    def _close(self, handle: _Span, start: float, end: float) -> None:
        with self._lock:
            self._seq += 1
            record = SpanRecord(
                name=handle.name,
                trace_id=handle.context[0],
                span_id=handle.context[1],
                parent_id=handle.parent_id,
                start=start,
                end=end,
                attrs=handle.attrs,
                status=handle.status,
                seq=self._seq,
            )
            self._ring.append(record)
            journal = self._journal
        if journal is not None:
            journal.write("span", record.to_dict())

    # -- retention / export ------------------------------------------------

    def spans(self, name: str | None = None) -> list[SpanRecord]:
        """Closed spans still in the ring, oldest first."""
        with self._lock:
            records = list(self._ring)
        if name is not None:
            records = [record for record in records if record.name == name]
        return records

    def mark(self) -> int:
        """Sequence watermark; pair with :meth:`since` to slice new closes."""
        with self._lock:
            return self._seq

    def since(self, mark: int) -> list[SpanRecord]:
        """Spans closed after ``mark`` and still retained, oldest first."""
        with self._lock:
            return [record for record in self._ring if record.seq > mark]

    def absorb(self, records: Sequence[SpanRecord | dict]) -> None:
        """Fold spans shipped from another process into this ring."""
        converted = [
            record if isinstance(record, SpanRecord) else SpanRecord.from_dict(record)
            for record in records
        ]
        with self._lock:
            for record in converted:
                self._seq += 1
                record.seq = self._seq
                self._ring.append(record)
            journal = self._journal
        if journal is not None:
            for record in converted:
                journal.write("span", record.to_dict())

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def attach_journal(self, journal) -> None:
        """Mirror every span close into ``journal`` (a ``RunJournal``)."""
        self._journal = journal

    def detach_journal(self) -> None:
        self._journal = None


_TRACER = Tracer()
_TRACER_LOCK = threading.Lock()


def tracer() -> Tracer:
    """The process-global tracer (what ``/spans`` and the journal read)."""
    return _TRACER


def set_tracer(instance: Tracer) -> Tracer:
    global _TRACER
    with _TRACER_LOCK:
        previous = _TRACER
        _TRACER = instance
        return previous


@contextmanager
def use_tracer(instance: Tracer | None = None) -> Iterator[Tracer]:
    """Swap in a fresh (or given) global tracer for the duration (tests)."""
    instance = instance if instance is not None else Tracer()
    previous = set_tracer(instance)
    try:
        yield instance
    finally:
        set_tracer(previous)


@contextmanager
def trace_span(name: str, parent: SpanContext | None | object = _UNSET, **attrs: object) -> Iterator[_Span | None]:
    """``tracer().span(...)`` — the one-line instrumentation entry point."""
    with tracer().span(name, parent=parent, **attrs) as handle:
        yield handle


def current_context() -> SpanContext | None:
    """Carrier of the innermost open span, for explicit propagation."""
    return _CURRENT.get()


@contextmanager
def use_parent(context: SpanContext | None) -> Iterator[None]:
    """Make ``context`` the ambient parent for spans opened in the block.

    The propagation primitive for execution boundaries that do not copy
    ``contextvars`` (pool threads, process workers): the worker wraps the
    task in ``use_parent(shipped_carrier)`` so task-opened spans attach to
    the dispatching span.
    """
    token = _CURRENT.set(context)
    try:
        yield
    finally:
        _CURRENT.reset(token)
