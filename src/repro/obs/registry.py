"""Labeled metrics with a process-global registry and mergeable snapshots.

The metric model is deliberately small — four kinds, all deterministic:

* :class:`Counter` — monotone float total per label set;
* :class:`Gauge` — last-written value per label set (merged by ``max`` so
  cross-worker merges stay associative and commutative);
* :class:`Histogram` — fixed log-spaced bucket bounds shared by every
  series of a family, so Prometheus exposition is reproducible across
  hosts and runs, with an array-batched :meth:`Histogram.observe_many`
  for hot paths;
* :class:`Distribution` — a :class:`~repro.stats.descriptive.RunningSummary`
  per label set: exact mergeable count/mean/variance/min/max moments,
  the building block for score- and feature-drift monitors.

Families live in a :class:`MetricsRegistry`.  The process-global default
registry (:func:`default_registry`) is what instrumentation sites write to
and what ``/metrics`` exposes; tests isolate themselves with
:func:`use_registry`.  Registries serialize to compact, JSON-able
:meth:`~MetricsRegistry.snapshot` dicts that process workers ship back
through ``TaskRunner`` result envelopes and the parent folds in with
:meth:`~MetricsRegistry.merge_snapshot` — snapshot merge is associative
and commutative, which a hypothesis test pins.

Telemetry is globally switchable: :func:`obs_enabled` reads ``REPRO_OBS``
(default on; ``off``/``0``/``false``/``no`` disable) unless overridden by
:func:`set_enabled` / :func:`obs_override`.  Instrumentation sites guard
their work behind ``obs_enabled()`` so a disabled process pays one dict
lookup per call site and nothing else.
"""

from __future__ import annotations

import math
import os
import threading
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "OBS_ENV_VAR",
    "Counter",
    "Distribution",
    "Gauge",
    "Histogram",
    "MetricHandle",
    "MetricsRegistry",
    "default_latency_buckets",
    "default_registry",
    "merge_snapshots",
    "obs_enabled",
    "obs_override",
    "set_default_registry",
    "set_enabled",
    "use_registry",
]

#: Environment variable gating telemetry for the whole process tree.
OBS_ENV_VAR = "REPRO_OBS"


def _running_summary_cls():
    # Imported lazily: ``repro.stats`` (the package init) pulls in the
    # runtime, which imports this module — a top-level import would cycle.
    from repro.stats.descriptive import RunningSummary

    return RunningSummary

_OFF_VALUES = frozenset({"off", "0", "false", "no"})

#: Tri-state programmatic override: None defers to the environment.
_ENABLED_OVERRIDE: bool | None = None


def obs_enabled() -> bool:
    """True when telemetry should be recorded in this process."""
    if _ENABLED_OVERRIDE is not None:
        return _ENABLED_OVERRIDE
    return os.environ.get(OBS_ENV_VAR, "on").strip().lower() not in _OFF_VALUES


def set_enabled(enabled: bool | None) -> None:
    """Override the ``REPRO_OBS`` gate (``None`` restores env resolution)."""
    global _ENABLED_OVERRIDE
    _ENABLED_OVERRIDE = enabled


@contextmanager
def obs_override(enabled: bool | None) -> Iterator[None]:
    """Temporarily force telemetry on or off (tests, benchmarks)."""
    global _ENABLED_OVERRIDE
    previous = _ENABLED_OVERRIDE
    _ENABLED_OVERRIDE = enabled
    try:
        yield
    finally:
        _ENABLED_OVERRIDE = previous


def default_latency_buckets() -> tuple[float, ...]:
    """Fixed log-spaced bounds, 10µs .. 100s, four per decade.

    The bounds are rounded to six significant digits so the exposed
    ``le`` labels are bit-identical across platforms — reproducible
    exposition is part of the contract.
    """
    bounds = []
    for i in range(29):
        bounds.append(float(f"{10.0 ** (-5.0 + i / 4.0):.6g}"))
    return tuple(bounds)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _validate_labelnames(labelnames: Sequence[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not label or not all(c.isalnum() or c == "_" for c in label) or label[0].isdigit():
            raise ValueError(f"invalid label name: {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names: {names!r}")
    return names


class MetricFamily:
    """Base class: one named family holding one series per label-value set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = _validate_labelnames(labelnames)
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    # -- label resolution -------------------------------------------------

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        if not labels and not self.labelnames:  # unlabeled hot path
            return ()
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames!r}, got {tuple(labels)!r}"
            )
        return tuple(str(labels[label]) for label in self.labelnames)

    def _new_state(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    def _state(self, labels: dict[str, object]) -> object:
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            with self._lock:
                state = self._series.setdefault(key, self._new_state())
        return state

    def series(self) -> dict[tuple[str, ...], object]:
        """Stable-ordered view of label-values -> state (sorted by key)."""
        with self._lock:
            return {key: self._series[key] for key in sorted(self._series)}

    def clear(self) -> None:
        with self._lock:
            self._series.clear()

    # -- snapshot protocol -------------------------------------------------

    def _state_snapshot(self, state: object) -> object:  # pragma: no cover
        raise NotImplementedError

    def _merge_state(self, state: object, payload: object) -> None:  # pragma: no cover
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [
                [list(key), self._state_snapshot(state)]
                for key, state in self.series().items()
            ],
        }

    def merge_snapshot(self, payload: dict) -> None:
        if payload["kind"] != self.kind or tuple(payload["labelnames"]) != self.labelnames:
            raise ValueError(
                f"{self.name}: incompatible snapshot "
                f"(kind={payload['kind']!r}, labels={payload['labelnames']!r})"
            )
        for key, state_payload in payload["series"]:
            labels = dict(zip(self.labelnames, key))
            self._merge_state(self._state(labels), state_payload)


class _Cell:
    """A single float value guarded by a lock (counter/gauge series state)."""

    __slots__ = ("lock", "value")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.value = 0.0


class Counter(MetricFamily):
    """Monotone total.  ``inc`` must be called with non-negative amounts."""

    kind = "counter"

    def _new_state(self) -> _Cell:
        return _Cell()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counter increments must be >= 0, got {amount}")
        cell = self._state(labels)
        with cell.lock:
            cell.value += amount

    def value(self, **labels: object) -> float:
        return self._state(labels).value

    def _state_snapshot(self, state: _Cell) -> float:
        return state.value

    def _merge_state(self, state: _Cell, payload: float) -> None:
        with state.lock:
            state.value += float(payload)


class Gauge(MetricFamily):
    """Last-written value; snapshots merge by elementwise ``max``."""

    kind = "gauge"

    def _new_state(self) -> _Cell:
        return _Cell()

    def set(self, value: float, **labels: object) -> None:
        cell = self._state(labels)
        with cell.lock:
            cell.value = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        cell = self._state(labels)
        with cell.lock:
            cell.value += amount

    def value(self, **labels: object) -> float:
        return self._state(labels).value

    def _state_snapshot(self, state: _Cell) -> float:
        return state.value

    def _merge_state(self, state: _Cell, payload: float) -> None:
        with state.lock:
            state.value = max(state.value, float(payload))


class _HistogramState:
    __slots__ = ("lock", "counts", "sum", "max")

    def __init__(self, n_buckets: int) -> None:
        self.lock = threading.Lock()
        self.counts = np.zeros(n_buckets, dtype=np.int64)
        self.sum = 0.0
        self.max = -math.inf


class Histogram(MetricFamily):
    """Fixed-bound histogram with cumulative Prometheus exposition.

    Bucket ``i`` counts observations ``<= buckets[i]``; the final implicit
    bucket is ``+Inf``.  Bounds are fixed at construction so every series
    (and every worker process) shares them, which keeps snapshots mergeable
    by elementwise addition.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in (buckets if buckets is not None else default_latency_buckets()))
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"{name}: bucket bounds must be strictly increasing: {bounds!r}")
        if not bounds:
            raise ValueError(f"{name}: at least one finite bucket bound is required")
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]
        self.buckets = bounds
        self._bounds_array = np.asarray(bounds, dtype=np.float64)

    def _new_state(self) -> _HistogramState:
        return _HistogramState(len(self.buckets) + 1)

    def observe(self, value: float, **labels: object) -> None:
        state = self._state(labels)
        value = float(value)
        index = int(np.searchsorted(self._bounds_array, value, side="left"))
        with state.lock:
            state.counts[index] += 1
            state.sum += value
            if value > state.max:
                state.max = value

    def observe_many(self, values: Sequence[float] | np.ndarray, **labels: object) -> None:
        """Array-batched observation — one searchsorted + bincount per call."""
        array = np.asarray(values, dtype=np.float64).ravel()
        if array.size == 0:
            return
        state = self._state(labels)
        indices = np.searchsorted(self._bounds_array, array, side="left")
        batch = np.bincount(indices, minlength=len(self.buckets) + 1).astype(np.int64)
        with state.lock:
            state.counts += batch
            state.sum += float(array.sum())
            state.max = max(state.max, float(array.max()))

    # -- per-series accessors ---------------------------------------------

    def count(self, **labels: object) -> int:
        return int(self._state(labels).counts.sum())

    def total(self, **labels: object) -> float:
        return self._state(labels).sum

    def max_value(self, **labels: object) -> float:
        state = self._state(labels)
        return state.max if state.counts.sum() else math.nan

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-interpolated quantile estimate for one series.

        The rank is located in the cumulative bucket counts and linearly
        interpolated between the bucket's lower and upper bounds; the
        overflow bucket is closed at the observed maximum, so ``q=1``
        returns the exact max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        state = self._state(labels)
        with state.lock:
            counts = state.counts.copy()
            maximum = state.max
        total = int(counts.sum())
        if total == 0:
            return math.nan
        rank = q * total
        cumulative = np.cumsum(counts)
        index = int(np.searchsorted(cumulative, rank, side="left"))
        index = min(index, len(counts) - 1)
        below = int(cumulative[index - 1]) if index > 0 else 0
        in_bucket = int(counts[index])
        lower = self.buckets[index - 1] if index > 0 else 0.0
        upper = self.buckets[index] if index < len(self.buckets) else maximum
        if upper <= lower or in_bucket == 0:
            return min(upper, maximum)
        fraction = (rank - below) / in_bucket
        return min(lower + fraction * (upper - lower), maximum)

    def snapshot(self) -> dict:
        payload = super().snapshot()
        payload["buckets"] = list(self.buckets)
        return payload

    def _state_snapshot(self, state: _HistogramState) -> dict:
        with state.lock:
            return {
                "counts": state.counts.tolist(),
                "sum": state.sum,
                "max": state.max if state.counts.sum() else None,
            }

    def _merge_state(self, state: _HistogramState, payload: dict) -> None:
        counts = np.asarray(payload["counts"], dtype=np.int64)
        if counts.shape != state.counts.shape:
            raise ValueError(f"{self.name}: snapshot has {counts.size} buckets, expected {state.counts.size}")
        with state.lock:
            state.counts += counts
            state.sum += float(payload["sum"])
            if payload["max"] is not None:
                state.max = max(state.max, float(payload["max"]))


class Distribution(MetricFamily):
    """Mergeable moment summary (count/mean/variance/min/max) per label set.

    Backed by :class:`~repro.stats.descriptive.RunningSummary`, so two
    workers' distributions merge exactly (Chan et al. pooling) — the
    primitive ROADMAP item 4's drift monitors build on.
    """

    kind = "distribution"

    def _new_state(self) -> "RunningSummary":
        return _running_summary_cls()()

    def observe(self, value: float, **labels: object) -> None:
        summary = self._state(labels)
        with self._lock:
            summary.push(float(value))

    def observe_many(self, values: Sequence[float] | np.ndarray, **labels: object) -> None:
        array = np.asarray(values, dtype=np.float64).ravel()
        if array.size == 0:
            return
        summary = self._state(labels)
        with self._lock:
            summary.update(array)

    def summary(self, **labels: object) -> "RunningSummary":
        return self._state(labels)

    def _state_snapshot(self, state: "RunningSummary") -> list:
        return list(state.state())

    def _merge_state(self, state: "RunningSummary", payload: Sequence[float]) -> None:
        with self._lock:
            state._merge_in_place(_running_summary_cls().from_state(tuple(payload)))


_KINDS: dict[str, type[MetricFamily]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "distribution": Distribution,
}


class MetricsRegistry:
    """Named metric families with idempotent get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        #: Bumped on reset() so cached handles re-resolve their family.
        self.generation = 0

    def _get_or_create(
        self, cls: type[MetricFamily], name: str, help: str, labelnames: Sequence[str], **kwargs: object
    ) -> MetricFamily:
        # Lock-free fast path: dict reads are atomic in CPython and hot
        # instrumentation sites resolve the same family on every call.
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = cls(name, help=help, labelnames=labelnames, **kwargs)
                    self._families[name] = family
                    return family
        if not isinstance(family, cls):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, requested {cls.kind}"
            )
        if tuple(labelnames) != family.labelnames:
            raise ValueError(
                f"metric {name!r} already registered with labels {family.labelnames!r}, "
                f"requested {tuple(labelnames)!r}"
            )
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        family = self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)
        assert isinstance(family, Histogram)
        if buckets is not None and tuple(float(b) for b in buckets) != family.buckets:
            raise ValueError(
                f"metric {name!r} already registered with buckets {family.buckets!r}"
            )
        return family

    def distribution(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Distribution:
        return self._get_or_create(Distribution, name, help, labelnames)  # type: ignore[return-value]

    def collect(self) -> list[MetricFamily]:
        """Families in registration-stable name order."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        with self._lock:
            self._families.clear()
            self.generation += 1

    # -- snapshot protocol -------------------------------------------------

    def snapshot(self) -> dict:
        """Compact JSON-able (and picklable) state of every family."""
        return {"families": {family.name: family.snapshot() for family in self.collect()}}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot into this registry, creating families as needed."""
        for name, payload in snapshot.get("families", {}).items():
            cls = _KINDS[payload["kind"]]
            kwargs: dict[str, object] = {}
            if payload["kind"] == "histogram":
                kwargs["buckets"] = payload.get("buckets") or default_latency_buckets()
            family = self._get_or_create(
                cls, name, payload.get("help", ""), tuple(payload["labelnames"]), **kwargs
            )
            family.merge_snapshot(payload)


def merge_snapshots(*snapshots: dict) -> dict:
    """Merge snapshots into a new snapshot (associative and commutative)."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()


_DEFAULT_REGISTRY = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-global registry instrumentation sites write to."""
    return _DEFAULT_REGISTRY


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the previous one."""
    global _DEFAULT_REGISTRY
    with _REGISTRY_LOCK:
        previous = _DEFAULT_REGISTRY
        _DEFAULT_REGISTRY = registry
        return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Swap in a fresh (or given) default registry for the duration.

    Test isolation primitive: everything instrumented inside the block
    lands in ``registry`` and the previous default is restored on exit.
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)


class MetricHandle:
    """Resolve-once accessor for one metric on the *current* default registry.

    Hot instrumentation sites (per-event ingest, per-batch dispatch) pay a
    full get-or-create resolution — name lookup, kind and label conflict
    checks — on every observation if they call ``registry.counter(...)``
    inline.  A module-level handle amortizes that: calling the handle
    returns the cached family and only re-resolves when the default
    registry was swapped (:func:`use_registry` / :func:`set_default_registry`)
    or reset (:meth:`MetricsRegistry.reset` bumps ``generation``)::

        _BATCHES = MetricHandle("counter", "repro_ingest_batches_total", "Batches.")
        ...
        if obs_enabled():
            _BATCHES().inc()

    The unlocked identity/generation check is a benign race: the worst
    case is a redundant re-resolution to the same family.
    """

    __slots__ = ("_kind", "_name", "_help", "_labelnames", "_kwargs",
                 "_family", "_registry", "_generation")

    def __init__(
        self,
        kind: str,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        **kwargs: object,
    ) -> None:
        if kind not in ("counter", "gauge", "histogram", "distribution"):
            raise ValueError(f"unknown metric kind {kind!r}")
        self._kind = kind
        self._name = name
        self._help = help
        self._labelnames = tuple(labelnames)
        self._kwargs = kwargs
        self._family: MetricFamily | None = None
        self._registry: MetricsRegistry | None = None
        self._generation = -1

    def __call__(self) -> MetricFamily:
        registry = _DEFAULT_REGISTRY
        if (
            self._family is None
            or self._registry is not registry
            or self._generation != registry.generation
        ):
            self._registry = registry
            self._generation = registry.generation
            self._family = getattr(registry, self._kind)(
                self._name, help=self._help, labelnames=self._labelnames, **self._kwargs
            )
        return self._family
