"""Structured run journals: atomic JSONL appends with bounded rotation.

A :class:`RunJournal` is the durable side of the telemetry plane: every
entry is one JSON object on one line (``{"seq", "ts", "kind", ...payload}``)
written with a single ``os.write`` to an ``O_APPEND`` descriptor — the
POSIX guarantee for single-write appends means concurrent writers from
threads never interleave partial lines.  When the active file exceeds
``max_bytes`` it is rotated to ``<path>.1`` (shifting older generations up
to ``keep``), so a long replay cannot grow a journal without bound.

Typical producers: ``Tracer.attach_journal`` mirrors span closes,
:meth:`RunJournal.write_metrics` records registry snapshots at
checkpoints, and the stream/shard CLIs take ``--journal PATH``.
:func:`read_journal` loads entries back (rotated generations first), and
``python -m repro.obs report`` renders a human summary.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Iterator

__all__ = ["RunJournal", "read_journal"]


class RunJournal:
    """Append-only JSONL journal with size-bounded rotation."""

    def __init__(
        self,
        path: str | Path,
        *,
        max_bytes: int = 8 * 1024 * 1024,
        keep: int = 2,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.keep = int(keep)
        self.clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._seq = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._size = os.fstat(self._fd).st_size

    # -- writing -----------------------------------------------------------

    def write(self, kind: str, payload: dict) -> int:
        """Append one entry; returns its sequence number."""
        with self._lock:
            self._seq += 1
            entry = {"seq": self._seq, "ts": self.clock(), "kind": kind, **payload}
            line = json.dumps(entry, sort_keys=True, default=_jsonify) + "\n"
            data = line.encode("utf-8")
            if self._size + len(data) > self.max_bytes and self._size > 0:
                self._rotate_locked()
            os.write(self._fd, data)
            self._size += len(data)
            return self._seq

    def write_metrics(self, registry) -> int:
        """Record a full metric snapshot of ``registry`` as one entry."""
        return self.write("metrics", {"snapshot": registry.snapshot()})

    def _rotate_locked(self) -> None:
        os.close(self._fd)
        if self.keep == 0:
            self.path.unlink(missing_ok=True)
        else:
            for generation in range(self.keep, 1, -1):
                older = self.path.with_name(f"{self.path.name}.{generation - 1}")
                if older.exists():
                    os.replace(older, self.path.with_name(f"{self.path.name}.{generation}"))
            os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._size = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._fd >= 0:
                os.close(self._fd)
                self._fd = -1

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def generations(self) -> list[Path]:
        """Existing journal files, oldest generation first."""
        files = [
            self.path.with_name(f"{self.path.name}.{generation}")
            for generation in range(self.keep, 0, -1)
        ]
        files.append(self.path)
        return [path for path in files if path.exists()]


def _jsonify(value):
    """Fallback encoder for numpy scalars and other non-JSON natives."""
    if hasattr(value, "tolist"):  # numpy arrays and scalars alike
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def _iter_file(path: Path) -> Iterator[dict]:
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                # A torn final line from a crashed writer is expected; skip.
                continue


def read_journal(path: str | Path, *, keep: int = 8) -> list[dict]:
    """Load journal entries, rotated generations first (oldest to newest)."""
    path = Path(path)
    entries: list[dict] = []
    for generation in range(keep, 0, -1):
        rotated = path.with_name(f"{path.name}.{generation}")
        if rotated.exists():
            entries.extend(_iter_file(rotated))
    if path.exists():
        entries.extend(_iter_file(path))
    return entries
