"""Columnar event store backing the movement map (struct-of-arrays).

The paper's mouse instrumentation produces long streams of
``<(x, y), type, time>`` triplets.  Storing them as one Python object per
event makes every aggregation — heat maps, per-type counts, path lengths,
time-window slices — an interpreter loop.  :class:`EventArray` keeps the
stream as four parallel NumPy arrays (``x``, ``y``, integer type codes and
timestamps, sorted by time) so those aggregations become single vectorized
operations, while :class:`~repro.matching.mouse.MovementMap` retains the
``MouseEvent`` object API as a thin view for existing callers.

Every vectorized aggregation has a retained scalar-loop **oracle**
(``*_loop``) used by the equivalence tests and the kernel benchmark; heat
maps and per-type counts are integer-valued, so the fast paths are
bitwise-identical to the loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (mouse imports events)
    from repro.matching.mouse import MouseEvent, MouseEventType

#: Stable event-type codes, shared with the feature-cache fingerprints and
#: the serving population files (``repro.serve.population``).
EVENT_CODES: dict[str, int] = {"move": 0, "left": 1, "right": 2, "scroll": 3}

#: Number of distinct event types.
N_EVENT_TYPES = len(EVENT_CODES)

_CODE_VALUES: tuple[str, ...] = tuple(
    value for value, _ in sorted(EVENT_CODES.items(), key=lambda item: item[1])
)


def bin_position(
    x: float, y: float, screen: tuple[int, int], shape: tuple[int, int]
) -> tuple[int, int]:
    """Grid cell of one position: the scalar heat-map binning rule.

    The single source of truth for clip-truncate-cap binning, shared by
    the retained scalar oracle (:meth:`EventArray.heat_map_counts_loop`)
    and the streaming per-event fast path
    (:class:`repro.stream.IncrementalHeatMap`); the vectorized
    :meth:`EventArray.heat_map_counts` is bitwise-identical to it.
    """
    rows, cols = shape
    screen_rows, screen_cols = screen
    x = min(max(float(x), 0.0), screen_cols - 1)
    y = min(max(float(y), 0.0), screen_rows - 1)
    row = min(int(y / screen_rows * rows), rows - 1)
    col = min(int(x / screen_cols * cols), cols - 1)
    return row, col


def type_for(code: int) -> "MouseEventType":
    """The :class:`MouseEventType` of a stable integer code."""
    from repro.matching.mouse import MouseEventType

    return MouseEventType(_CODE_VALUES[code])


class EventArray:
    """An immutable, time-sorted struct-of-arrays event stream.

    Attributes
    ----------
    x, y:
        Screen positions, ``float64`` arrays of length ``n``.
    codes:
        Event-type codes (see :data:`EVENT_CODES`), ``int64`` array.
    t:
        Timestamps in seconds, ``float64`` array, non-decreasing.
    """

    __slots__ = ("x", "y", "codes", "t")

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        codes: np.ndarray,
        t: np.ndarray,
        *,
        assume_sorted: bool = False,
        validate: bool = True,
    ) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        codes = np.asarray(codes, dtype=np.int64).ravel()
        t = np.asarray(t, dtype=np.float64).ravel()
        if not (x.size == y.size == codes.size == t.size):
            raise ValueError("event columns must have equal lengths")
        if validate and t.size:
            if t.min() < 0:
                raise ValueError("timestamp must be non-negative")
            if codes.min() < 0 or codes.max() >= N_EVENT_TYPES:
                raise ValueError(f"event codes must lie in [0, {N_EVENT_TYPES})")
        if not assume_sorted and t.size:
            # Stable, matching ``sorted(events, key=lambda e: e.timestamp)``.
            order = np.argsort(t, kind="stable")
            x, y, codes, t = x[order], y[order], codes[order], t[order]
        self.x = x
        self.y = y
        self.codes = codes
        self.t = t
        for column in (self.x, self.y, self.codes, self.t):
            column.flags.writeable = False

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls) -> "EventArray":
        return cls(
            np.zeros(0), np.zeros(0), np.zeros(0, dtype=np.int64), np.zeros(0),
            assume_sorted=True, validate=False,
        )

    @classmethod
    def from_events(cls, events: Iterable["MouseEvent"]) -> "EventArray":
        """Build the columnar store from ``MouseEvent`` objects."""
        events = list(events)
        if not events:
            return cls.empty()
        x = np.fromiter((e.x for e in events), dtype=np.float64, count=len(events))
        y = np.fromiter((e.y for e in events), dtype=np.float64, count=len(events))
        codes = np.fromiter(
            (EVENT_CODES[e.event_type.value] for e in events),
            dtype=np.int64,
            count=len(events),
        )
        t = np.fromiter((e.timestamp for e in events), dtype=np.float64, count=len(events))
        # MouseEvent.__post_init__ already validated timestamps/types.
        return cls(x, y, codes, t, validate=False)

    def __len__(self) -> int:
        return self.t.size

    # ------------------------------------------------------------------ #
    # Functional growth (columns stay immutable; a new store is returned)
    # ------------------------------------------------------------------ #

    def append(self, x: float, y: float, code: int, t: float) -> "EventArray":
        """A new store with one event added (re-sorted by timestamp, stable).

        ``EventArray`` columns are immutable, so growth is functional:
        ``store = store.append(...)``.  The result is bitwise-identical to
        rebuilding via :meth:`from_events` on the equivalent ``MouseEvent``
        list — without round-tripping through Python objects.  For
        high-rate appends use
        :class:`~repro.stream.StreamingEventBuffer`, which grows
        amortized-O(1) columns instead of copying per event.
        """
        return self.extend([x], [y], [code], [t])

    def extend(
        self,
        x: np.ndarray,
        y: np.ndarray,
        codes: np.ndarray,
        t: np.ndarray,
    ) -> "EventArray":
        """A new store with a column batch of events added (stable re-sort).

        Equivalent to ``EventArray`` built from the concatenated columns:
        the incoming events are validated and stably merged by timestamp
        after the existing ones, exactly as :meth:`from_events` orders an
        extended event list.
        """
        added = EventArray(x, y, codes, t, assume_sorted=False, validate=True)
        if not len(self):
            return added
        if not len(added):
            return self
        return EventArray(
            np.concatenate([self.x, added.x]),
            np.concatenate([self.y, added.y]),
            np.concatenate([self.codes, added.codes]),
            np.concatenate([self.t, added.t]),
            assume_sorted=bool(added.t[0] >= self.t[-1]),
            validate=False,
        )

    def to_events(self) -> list["MouseEvent"]:
        """Materialise ``MouseEvent`` objects (the thin object view)."""
        from repro.matching.mouse import MouseEvent

        types = [type_for(code) for code in self.codes.tolist()]
        return [
            MouseEvent(x=x, y=y, event_type=event_type, timestamp=t)
            for x, y, event_type, t in zip(
                self.x.tolist(), self.y.tolist(), types, self.t.tolist()
            )
        ]

    # ------------------------------------------------------------------ #
    # Vectorized aggregations (fast kernels)
    # ------------------------------------------------------------------ #

    def counts_by_code(self) -> np.ndarray:
        """Number of events of each type code, shape ``(N_EVENT_TYPES,)``."""
        return np.bincount(self.codes, minlength=N_EVENT_TYPES)

    def slice_until(self, timestamp: float) -> "EventArray":
        """Events with ``t <= timestamp`` (columns are time-sorted)."""
        end = int(np.searchsorted(self.t, timestamp, side="right"))
        return self._slice(0, end)

    def slice_between(self, start: float, end: float) -> "EventArray":
        """Events in the closed interval ``[start, end]``."""
        lo = int(np.searchsorted(self.t, start, side="left"))
        hi = int(np.searchsorted(self.t, end, side="right"))
        return self._slice(lo, max(hi, lo))

    def _slice(self, lo: int, hi: int) -> "EventArray":
        return EventArray(
            self.x[lo:hi], self.y[lo:hi], self.codes[lo:hi], self.t[lo:hi],
            assume_sorted=True, validate=False,
        )

    def duration(self) -> float:
        if len(self) < 2:
            return 0.0
        return float(self.t[-1] - self.t[0])

    def positions(self) -> np.ndarray:
        """An ``(n, 2)`` array of ``(x, y)`` positions in event order."""
        if not len(self):
            return np.zeros((0, 2), dtype=float)
        return np.column_stack([self.x, self.y])

    def path_length(self) -> float:
        """Total Euclidean distance travelled by the cursor."""
        if len(self) < 2:
            return 0.0
        deltas = np.diff(self.positions(), axis=0)
        return float(np.sqrt((deltas**2).sum(axis=1)).sum())

    def heat_map_counts(
        self,
        screen: tuple[int, int],
        shape: tuple[int, int],
        code: Optional[int] = None,
    ) -> np.ndarray:
        """Bin (clipped) positions onto a grid — one ``bincount``.

        Counts are integers, so this is bitwise-identical to
        :func:`heat_map_counts_loop`, the retained scalar oracle.
        """
        rows, cols = shape
        screen_rows, screen_cols = screen
        if code is None:
            x, y = self.x, self.y
        else:
            mask = self.codes == code
            x, y = self.x[mask], self.y[mask]
        if not x.size:
            return np.zeros((rows, cols), dtype=float)
        x = np.clip(x, 0.0, screen_cols - 1)
        y = np.clip(y, 0.0, screen_rows - 1)
        # int() truncation in the oracle; values are non-negative after the
        # clip, so astype(int64) truncates identically.
        row = np.minimum((y / screen_rows * rows).astype(np.int64), rows - 1)
        col = np.minimum((x / screen_cols * cols).astype(np.int64), cols - 1)
        counts = np.bincount(row * cols + col, minlength=rows * cols)
        return counts.reshape(rows, cols).astype(float)

    # ------------------------------------------------------------------ #
    # Retained scalar oracles
    # ------------------------------------------------------------------ #

    def heat_map_counts_loop(
        self,
        screen: tuple[int, int],
        shape: tuple[int, int],
        code: Optional[int] = None,
    ) -> np.ndarray:
        """The original event-by-event heat-map aggregation (oracle)."""
        rows, cols = shape
        counts = np.zeros((rows, cols), dtype=float)
        for index in range(len(self)):
            if code is not None and self.codes[index] != code:
                continue
            row, col = bin_position(self.x[index], self.y[index], screen, shape)
            counts[row, col] += 1.0
        return counts

    def counts_by_code_loop(self) -> np.ndarray:
        """Event-by-event per-type counting (oracle)."""
        counts = np.zeros(N_EVENT_TYPES, dtype=np.int64)
        for code in self.codes.tolist():
            counts[code] += 1
        return counts

    def __repr__(self) -> str:
        return f"EventArray(n={len(self)})"


def concatenate(stores: list[EventArray]) -> EventArray:
    """Concatenate several event streams (re-sorted by timestamp, stable)."""
    if not stores:
        return EventArray.empty()
    return EventArray(
        np.concatenate([s.x for s in stores]),
        np.concatenate([s.y for s in stores]),
        np.concatenate([s.codes for s in stores]),
        np.concatenate([s.t for s in stores]),
        validate=False,
    )
