"""Mouse movement maps ``G`` and heat maps (Section II-A2).

Every mouse movement is a triplet ``<(x, y), type, time>`` where the type is
one of move, left click, right click, or scroll.  Aggregating positions per
type yields screen-sized heat maps in which frequently visited pixels carry
higher values; the paper down-streams those heat maps into a CNN.

Since the columnar event-stream refactor the map is backed by an
:class:`~repro.matching.events.EventArray` (struct-of-arrays: positions,
type codes, timestamps), so heat maps, per-type counts, path statistics and
time-window slicing are single vectorized operations.  The historical
``MouseEvent`` object API is kept as a thin, lazily-materialised view.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.kernels import oracle_active
from repro.matching import events as _events
from repro.matching.events import EventArray


class MouseEventType(enum.Enum):
    """The four event types tracked by the paper's instrumentation."""

    MOVE = "move"
    LEFT_CLICK = "left"
    RIGHT_CLICK = "right"
    SCROLL = "scroll"


@dataclass(frozen=True)
class MouseEvent:
    """A single mouse event at screen position ``(x, y)`` and time ``t``."""

    x: float
    y: float
    event_type: MouseEventType
    timestamp: float

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")


class HeatMap:
    """A screen-sized intensity matrix aggregating visit frequency."""

    def __init__(self, counts: np.ndarray) -> None:
        array = np.asarray(counts, dtype=float)
        if array.ndim != 2:
            raise ValueError("heat map must be 2-D")
        if array.size and array.min() < 0:
            raise ValueError("heat map counts must be non-negative")
        self._counts = array

    @property
    def counts(self) -> np.ndarray:
        view = self._counts.view()
        view.flags.writeable = False
        return view

    @property
    def shape(self) -> tuple[int, int]:
        return self._counts.shape  # type: ignore[return-value]

    @property
    def total(self) -> float:
        return float(self._counts.sum())

    def normalized(self) -> np.ndarray:
        """Counts rescaled to [0, 1] (all-zeros stays all-zeros)."""
        maximum = self._counts.max() if self._counts.size else 0.0
        if maximum == 0:
            return self._counts.copy()
        return self._counts / maximum

    def downscale(self, shape: tuple[int, int]) -> "HeatMap":
        """Sum-pool the heat map down to ``shape`` (for CNN input).

        Vectorized via ``np.add.reduceat`` over the bin edges; the counts
        are visit frequencies (integer-valued), so the pooled sums are
        bitwise-identical to the retained double-loop oracle for divisible
        and non-divisible shapes alike.
        """
        target_rows, target_cols = shape
        if target_rows <= 0 or target_cols <= 0:
            raise ValueError("target shape must be positive")
        if oracle_active():
            return HeatMap(self._downscale_loop(shape))
        rows, cols = self.shape
        if rows == 0 or cols == 0:
            return HeatMap(np.zeros(shape, dtype=float))
        row_edges = np.linspace(0, rows, target_rows + 1).astype(int)
        col_edges = np.linspace(0, cols, target_cols + 1).astype(int)
        pooled = np.add.reduceat(self._counts, row_edges[:-1], axis=0)
        pooled = np.add.reduceat(pooled, col_edges[:-1], axis=1)
        # reduceat yields counts[i] (not 0) for empty segments; blank them.
        empty_rows = np.diff(row_edges) == 0
        empty_cols = np.diff(col_edges) == 0
        if empty_rows.any():
            pooled[empty_rows, :] = 0.0
        if empty_cols.any():
            pooled[:, empty_cols] = 0.0
        return HeatMap(pooled)

    def _downscale_loop(self, shape: tuple[int, int]) -> np.ndarray:
        """The original per-target-cell pooling loop (retained oracle)."""
        target_rows, target_cols = shape
        rows, cols = self.shape
        row_edges = np.linspace(0, rows, target_rows + 1).astype(int)
        col_edges = np.linspace(0, cols, target_cols + 1).astype(int)
        pooled = np.zeros(shape, dtype=float)
        for i in range(target_rows):
            for j in range(target_cols):
                block = self._counts[
                    row_edges[i] : row_edges[i + 1], col_edges[j] : col_edges[j + 1]
                ]
                pooled[i, j] = block.sum()
        return pooled

    def region_mass(self, row_slice: slice, col_slice: slice) -> float:
        """Fraction of the total mass falling in a screen region."""
        if self.total == 0:
            return 0.0
        return float(self._counts[row_slice, col_slice].sum() / self.total)

    def center_of_mass(self) -> tuple[float, float]:
        """The intensity-weighted mean position ``(row, col)``."""
        if self.total == 0:
            rows, cols = self.shape
            return (rows / 2.0, cols / 2.0)
        row_idx, col_idx = np.indices(self.shape)
        return (
            float((row_idx * self._counts).sum() / self.total),
            float((col_idx * self._counts).sum() / self.total),
        )

    def coverage(self) -> float:
        """Fraction of pixels visited at least once."""
        if self._counts.size == 0:
            return 0.0
        return float(np.count_nonzero(self._counts) / self._counts.size)

    def __repr__(self) -> str:
        return f"HeatMap(shape={self.shape}, total={self.total:.0f})"


class MovementMap:
    """The full movement map ``G``: an ordered sequence of mouse events."""

    #: Default (rows, cols) screen resolution, i.e. (height, width) in pixels.
    DEFAULT_SCREEN: tuple[int, int] = (768, 1024)

    def __init__(
        self,
        events: Iterable[MouseEvent] = (),
        screen: tuple[int, int] = DEFAULT_SCREEN,
        *,
        data: Optional[EventArray] = None,
    ) -> None:
        if data is not None:
            self._data = data
        else:
            self._data = EventArray.from_events(events)
        rows, cols = screen
        if rows <= 0 or cols <= 0:
            raise ValueError("screen dimensions must be positive")
        self.screen = (int(rows), int(cols))
        self._event_view: Optional[tuple[MouseEvent, ...]] = None

    @classmethod
    def from_arrays(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        codes: np.ndarray,
        timestamps: np.ndarray,
        screen: tuple[int, int] = DEFAULT_SCREEN,
        *,
        assume_sorted: bool = False,
        validate: bool = True,
    ) -> "MovementMap":
        """Build a map directly from columnar event data (no objects)."""
        data = EventArray(
            x, y, codes, timestamps, assume_sorted=assume_sorted, validate=validate
        )
        return cls(screen=screen, data=data)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def data(self) -> EventArray:
        """The columnar event store backing this map."""
        return self._data

    @property
    def events(self) -> tuple[MouseEvent, ...]:
        if self._event_view is None:
            self._event_view = tuple(self._data.to_events())
        return self._event_view

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[MouseEvent]:
        return iter(self.events)

    @property
    def is_empty(self) -> bool:
        return len(self._data) == 0

    def events_of_type(self, event_type: MouseEventType) -> list[MouseEvent]:
        return [e for e in self.events if e.event_type == event_type]

    def count_by_type(self) -> dict[MouseEventType, int]:
        if oracle_active():
            counts = self._data.counts_by_code_loop()
        else:
            counts = self._data.counts_by_code()
        return {
            event_type: int(counts[_events.EVENT_CODES[event_type.value]])
            for event_type in MouseEventType
        }

    def duration(self) -> float:
        """Elapsed time between the first and last event."""
        return self._data.duration()

    def positions(self) -> np.ndarray:
        """An ``(n, 2)`` array of ``(x, y)`` positions in event order."""
        return self._data.positions()

    def path_length(self) -> float:
        """Total Euclidean distance travelled by the cursor."""
        return self._data.path_length()

    def mean_position(self) -> tuple[float, float]:
        """Average ``(x, y)`` position over all events."""
        if self.is_empty:
            rows, cols = self.screen
            return (cols / 2.0, rows / 2.0)
        return (float(self._data.x.mean()), float(self._data.y.mean()))

    def mean_speed(self) -> float:
        """Average cursor speed in pixels per second."""
        duration = self.duration()
        if duration <= 0:
            return 0.0
        return self.path_length() / duration

    # ------------------------------------------------------------------ #
    # Heat maps
    # ------------------------------------------------------------------ #

    def heat_map(
        self,
        event_type: Optional[MouseEventType] = None,
        shape: Optional[tuple[int, int]] = None,
    ) -> HeatMap:
        """Aggregate events of ``event_type`` (or all) into a heat map.

        Positions are clipped to the screen, then binned onto a grid of
        ``shape`` (defaults to the full screen resolution).  The fast path
        is one ``bincount``; counts are integers, so it is bitwise-identical
        to the retained event-by-event oracle.
        """
        grid = shape if shape is not None else self.screen
        code = None if event_type is None else _events.EVENT_CODES[event_type.value]
        if oracle_active():
            counts = self._data.heat_map_counts_loop(self.screen, grid, code=code)
        else:
            counts = self._data.heat_map_counts(self.screen, grid, code=code)
        return HeatMap(counts)

    def heat_maps_by_type(self, shape: Optional[tuple[int, int]] = None) -> dict[MouseEventType, HeatMap]:
        """The four heat maps the paper's CNN consumes: move/left/right/scroll."""
        return {
            event_type: self.heat_map(event_type=event_type, shape=shape)
            for event_type in MouseEventType
        }

    # ------------------------------------------------------------------ #
    # Slicing
    # ------------------------------------------------------------------ #

    def until(self, timestamp: float) -> "MovementMap":
        """Events up to (and including) ``timestamp``."""
        return MovementMap(screen=self.screen, data=self._data.slice_until(timestamp))

    def between(self, start: float, end: float) -> "MovementMap":
        """Events in the closed time interval ``[start, end]``."""
        return MovementMap(screen=self.screen, data=self._data.slice_between(start, end))

    def __repr__(self) -> str:
        return f"MovementMap(events={len(self)}, screen={self.screen})"


def merge_movement_maps(maps: Sequence[MovementMap]) -> MovementMap:
    """Concatenate several movement maps (events re-sorted by timestamp)."""
    if not maps:
        return MovementMap()
    screen = maps[0].screen
    for movement_map in maps:
        if movement_map.screen != screen:
            raise ValueError("cannot merge movement maps with different screen sizes")
    merged = _events.concatenate([movement_map.data for movement_map in maps])
    return MovementMap(screen=screen, data=merged)
