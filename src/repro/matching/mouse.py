"""Mouse movement maps ``G`` and heat maps (Section II-A2).

Every mouse movement is a triplet ``<(x, y), type, time>`` where the type is
one of move, left click, right click, or scroll.  Aggregating positions per
type yields screen-sized heat maps in which frequently visited pixels carry
higher values; the paper down-streams those heat maps into a CNN.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np


class MouseEventType(enum.Enum):
    """The four event types tracked by the paper's instrumentation."""

    MOVE = "move"
    LEFT_CLICK = "left"
    RIGHT_CLICK = "right"
    SCROLL = "scroll"


@dataclass(frozen=True)
class MouseEvent:
    """A single mouse event at screen position ``(x, y)`` and time ``t``."""

    x: float
    y: float
    event_type: MouseEventType
    timestamp: float

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")


class HeatMap:
    """A screen-sized intensity matrix aggregating visit frequency."""

    def __init__(self, counts: np.ndarray) -> None:
        array = np.asarray(counts, dtype=float)
        if array.ndim != 2:
            raise ValueError("heat map must be 2-D")
        if array.size and array.min() < 0:
            raise ValueError("heat map counts must be non-negative")
        self._counts = array

    @property
    def counts(self) -> np.ndarray:
        view = self._counts.view()
        view.flags.writeable = False
        return view

    @property
    def shape(self) -> tuple[int, int]:
        return self._counts.shape  # type: ignore[return-value]

    @property
    def total(self) -> float:
        return float(self._counts.sum())

    def normalized(self) -> np.ndarray:
        """Counts rescaled to [0, 1] (all-zeros stays all-zeros)."""
        maximum = self._counts.max() if self._counts.size else 0.0
        if maximum == 0:
            return self._counts.copy()
        return self._counts / maximum

    def downscale(self, shape: tuple[int, int]) -> "HeatMap":
        """Sum-pool the heat map down to ``shape`` (for CNN input)."""
        target_rows, target_cols = shape
        rows, cols = self.shape
        if target_rows <= 0 or target_cols <= 0:
            raise ValueError("target shape must be positive")
        row_edges = np.linspace(0, rows, target_rows + 1).astype(int)
        col_edges = np.linspace(0, cols, target_cols + 1).astype(int)
        pooled = np.zeros(shape, dtype=float)
        for i in range(target_rows):
            for j in range(target_cols):
                block = self._counts[
                    row_edges[i] : row_edges[i + 1], col_edges[j] : col_edges[j + 1]
                ]
                pooled[i, j] = block.sum()
        return HeatMap(pooled)

    def region_mass(self, row_slice: slice, col_slice: slice) -> float:
        """Fraction of the total mass falling in a screen region."""
        if self.total == 0:
            return 0.0
        return float(self._counts[row_slice, col_slice].sum() / self.total)

    def center_of_mass(self) -> tuple[float, float]:
        """The intensity-weighted mean position ``(row, col)``."""
        if self.total == 0:
            rows, cols = self.shape
            return (rows / 2.0, cols / 2.0)
        row_idx, col_idx = np.indices(self.shape)
        return (
            float((row_idx * self._counts).sum() / self.total),
            float((col_idx * self._counts).sum() / self.total),
        )

    def coverage(self) -> float:
        """Fraction of pixels visited at least once."""
        if self._counts.size == 0:
            return 0.0
        return float(np.count_nonzero(self._counts) / self._counts.size)

    def __repr__(self) -> str:
        return f"HeatMap(shape={self.shape}, total={self.total:.0f})"


class MovementMap:
    """The full movement map ``G``: an ordered sequence of mouse events."""

    #: Default (rows, cols) screen resolution, i.e. (height, width) in pixels.
    DEFAULT_SCREEN: tuple[int, int] = (768, 1024)

    def __init__(
        self,
        events: Iterable[MouseEvent] = (),
        screen: tuple[int, int] = DEFAULT_SCREEN,
    ) -> None:
        self._events: list[MouseEvent] = sorted(events, key=lambda e: e.timestamp)
        rows, cols = screen
        if rows <= 0 or cols <= 0:
            raise ValueError("screen dimensions must be positive")
        self.screen = (int(rows), int(cols))

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def events(self) -> tuple[MouseEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[MouseEvent]:
        return iter(self._events)

    @property
    def is_empty(self) -> bool:
        return not self._events

    def events_of_type(self, event_type: MouseEventType) -> list[MouseEvent]:
        return [e for e in self._events if e.event_type == event_type]

    def count_by_type(self) -> dict[MouseEventType, int]:
        counts = {event_type: 0 for event_type in MouseEventType}
        for event in self._events:
            counts[event.event_type] += 1
        return counts

    def duration(self) -> float:
        """Elapsed time between the first and last event."""
        if len(self._events) < 2:
            return 0.0
        return self._events[-1].timestamp - self._events[0].timestamp

    def positions(self) -> np.ndarray:
        """An ``(n, 2)`` array of ``(x, y)`` positions in event order."""
        if not self._events:
            return np.zeros((0, 2), dtype=float)
        return np.array([(e.x, e.y) for e in self._events], dtype=float)

    def path_length(self) -> float:
        """Total Euclidean distance travelled by the cursor."""
        positions = self.positions()
        if positions.shape[0] < 2:
            return 0.0
        deltas = np.diff(positions, axis=0)
        return float(np.sqrt((deltas**2).sum(axis=1)).sum())

    def mean_position(self) -> tuple[float, float]:
        """Average ``(x, y)`` position over all events."""
        positions = self.positions()
        if positions.shape[0] == 0:
            rows, cols = self.screen
            return (cols / 2.0, rows / 2.0)
        return (float(positions[:, 0].mean()), float(positions[:, 1].mean()))

    def mean_speed(self) -> float:
        """Average cursor speed in pixels per second."""
        duration = self.duration()
        if duration <= 0:
            return 0.0
        return self.path_length() / duration

    # ------------------------------------------------------------------ #
    # Heat maps
    # ------------------------------------------------------------------ #

    def heat_map(
        self,
        event_type: Optional[MouseEventType] = None,
        shape: Optional[tuple[int, int]] = None,
    ) -> HeatMap:
        """Aggregate events of ``event_type`` (or all) into a heat map.

        Positions are clipped to the screen, then binned onto a grid of
        ``shape`` (defaults to the full screen resolution).
        """
        rows, cols = shape if shape is not None else self.screen
        counts = np.zeros((rows, cols), dtype=float)
        screen_rows, screen_cols = self.screen
        for event in self._events:
            if event_type is not None and event.event_type != event_type:
                continue
            x = min(max(event.x, 0.0), screen_cols - 1)
            y = min(max(event.y, 0.0), screen_rows - 1)
            row = int(y / screen_rows * rows)
            col = int(x / screen_cols * cols)
            row = min(row, rows - 1)
            col = min(col, cols - 1)
            counts[row, col] += 1.0
        return HeatMap(counts)

    def heat_maps_by_type(self, shape: Optional[tuple[int, int]] = None) -> dict[MouseEventType, HeatMap]:
        """The four heat maps the paper's CNN consumes: move/left/right/scroll."""
        return {
            event_type: self.heat_map(event_type=event_type, shape=shape)
            for event_type in MouseEventType
        }

    # ------------------------------------------------------------------ #
    # Slicing
    # ------------------------------------------------------------------ #

    def until(self, timestamp: float) -> "MovementMap":
        """Events up to (and including) ``timestamp``."""
        return MovementMap(
            (e for e in self._events if e.timestamp <= timestamp), screen=self.screen
        )

    def between(self, start: float, end: float) -> "MovementMap":
        """Events in the closed time interval ``[start, end]``."""
        return MovementMap(
            (e for e in self._events if start <= e.timestamp <= end), screen=self.screen
        )

    def __repr__(self) -> str:
        return f"MovementMap(events={len(self)}, screen={self.screen})"


def merge_movement_maps(maps: Sequence[MovementMap]) -> MovementMap:
    """Concatenate several movement maps (events re-sorted by timestamp)."""
    if not maps:
        return MovementMap()
    screen = maps[0].screen
    events: list[MouseEvent] = []
    for movement_map in maps:
        if movement_map.screen != screen:
            raise ValueError("cannot merge movement maps with different screen sizes")
        events.extend(movement_map.events)
    return MovementMap(events, screen=screen)
