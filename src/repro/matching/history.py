"""The decision history ``H`` (Section II-A2) and its matrix projection (Eq. 1).

Human matchers perform sequential decisions and may revisit a pair, changing
its confidence.  A history is an ordered sequence of
``<(a_i, b_j), confidence, time>`` triplets; the induced matching matrix
assigns each pair its *latest* confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.matching.matrix import MatchingMatrix
from repro.matching.schema import SchemaPair


@dataclass(frozen=True)
class Decision:
    """A single matching decision.

    Attributes
    ----------
    row, col:
        The element pair ``(a_i, b_j)`` the decision refers to.
    confidence:
        The reported confidence ``c`` in [0, 1].  A confidence of 0 encodes
        an explicit "does not match" decision.
    timestamp:
        Wall-clock time ``t`` (seconds since the start of the session).
    """

    row: int
    col: int
    confidence: float
    timestamp: float

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise ValueError("decision indices must be non-negative")
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence {self.confidence} outside [0, 1]")
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")

    @property
    def pair(self) -> tuple[int, int]:
        return (self.row, self.col)


class DecisionHistory:
    """An ordered decision history ``H = <h_1, ..., h_T>``.

    Decisions are kept sorted by timestamp (stable for equal timestamps), so
    the sequence order reflects the total order the paper assumes.
    """

    def __init__(
        self,
        decisions: Iterable[Decision] = (),
        shape: Optional[tuple[int, int]] = None,
        pair: Optional[SchemaPair] = None,
    ) -> None:
        self._decisions: list[Decision] = sorted(decisions, key=lambda d: d.timestamp)
        self.pair = pair
        if shape is None and pair is not None:
            shape = pair.shape
        if shape is None:
            shape = self._infer_shape()
        self.shape = shape
        self._validate_shape()

    def _infer_shape(self) -> tuple[int, int]:
        if not self._decisions:
            return (0, 0)
        max_row = max(d.row for d in self._decisions)
        max_col = max(d.col for d in self._decisions)
        return (max_row + 1, max_col + 1)

    def _validate_shape(self) -> None:
        rows, cols = self.shape
        for decision in self._decisions:
            if decision.row >= rows or decision.col >= cols:
                raise ValueError(
                    f"decision on pair {decision.pair} outside matrix of shape {self.shape}"
                )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def decisions(self) -> tuple[Decision, ...]:
        return tuple(self._decisions)

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._decisions)

    def __getitem__(self, index: int) -> Decision:
        return self._decisions[index]

    @property
    def is_empty(self) -> bool:
        return not self._decisions

    def confidences(self) -> np.ndarray:
        """Confidence of each decision, in sequence order."""
        return np.array([d.confidence for d in self._decisions], dtype=float)

    def timestamps(self) -> np.ndarray:
        """Timestamp of each decision, in sequence order."""
        return np.array([d.timestamp for d in self._decisions], dtype=float)

    def inter_decision_times(self) -> np.ndarray:
        """Time spent until reaching each decision: ``h_k.t - h_{k-1}.t``.

        The first decision's elapsed time is measured from time 0.
        """
        times = self.timestamps()
        if times.size == 0:
            return times
        previous = np.concatenate(([0.0], times[:-1]))
        return times - previous

    def decided_pairs(self) -> list[tuple[int, int]]:
        """Distinct pairs in order of *first* decision."""
        seen: dict[tuple[int, int], None] = {}
        for decision in self._decisions:
            seen.setdefault(decision.pair, None)
        return list(seen)

    def latest_decisions(self) -> dict[tuple[int, int], Decision]:
        """The latest decision per pair (the semantics of Eq. 1)."""
        latest: dict[tuple[int, int], Decision] = {}
        for decision in self._decisions:
            latest[decision.pair] = decision
        return latest

    def revisited_pairs(self) -> list[tuple[int, int]]:
        """Pairs decided more than once (mind changes / revisits)."""
        counts: dict[tuple[int, int], int] = {}
        for decision in self._decisions:
            counts[decision.pair] = counts.get(decision.pair, 0) + 1
        return [pair for pair, count in counts.items() if count > 1]

    def n_mind_changes(self) -> int:
        """Number of decisions that revise an earlier decision on the same pair."""
        seen: set[tuple[int, int]] = set()
        changes = 0
        for decision in self._decisions:
            if decision.pair in seen:
                changes += 1
            else:
                seen.add(decision.pair)
        return changes

    def duration(self) -> float:
        """Total elapsed time between the first and the last decision."""
        if len(self._decisions) < 2:
            return 0.0
        return self._decisions[-1].timestamp - self._decisions[0].timestamp

    def mean_confidence(self) -> float:
        """``H.c``: average confidence reported across all decisions."""
        if not self._decisions:
            return 0.0
        return float(self.confidences().mean())

    # ------------------------------------------------------------------ #
    # Projections / slicing
    # ------------------------------------------------------------------ #

    def to_matrix(self) -> MatchingMatrix:
        """Project the history to a matching matrix (Eq. 1).

        Each pair receives the confidence of its *latest* decision; pairs
        never decided stay at 0.
        """
        matrix = np.zeros(self.shape, dtype=float)
        for pair, decision in self.latest_decisions().items():
            matrix[pair] = decision.confidence
        return MatchingMatrix(matrix, pair=self.pair)

    def prefix(self, n_decisions: int) -> "DecisionHistory":
        """The history truncated to its first ``n_decisions`` decisions."""
        if n_decisions < 0:
            raise ValueError("n_decisions must be non-negative")
        return DecisionHistory(self._decisions[:n_decisions], shape=self.shape, pair=self.pair)

    def window(self, start: int, length: int) -> "DecisionHistory":
        """A contiguous sub-history of ``length`` decisions starting at ``start``.

        Used to build the sub-matchers of Section IV-B1 (``MExI_50``/``MExI_70``).
        """
        if start < 0 or length < 0:
            raise ValueError("start and length must be non-negative")
        return DecisionHistory(
            self._decisions[start : start + length], shape=self.shape, pair=self.pair
        )

    def with_decision(self, decision: Decision) -> "DecisionHistory":
        """A new history with ``decision`` appended."""
        return DecisionHistory(
            list(self._decisions) + [decision], shape=self.shape, pair=self.pair
        )

    def drop_first(self, n_decisions: int) -> "DecisionHistory":
        """A history with the first ``n_decisions`` decisions removed (warm-up)."""
        if n_decisions < 0:
            raise ValueError("n_decisions must be non-negative")
        return DecisionHistory(self._decisions[n_decisions:], shape=self.shape, pair=self.pair)

    def filter(self, keep: Sequence[bool]) -> "DecisionHistory":
        """Keep only the decisions whose flag in ``keep`` is true."""
        if len(keep) != len(self._decisions):
            raise ValueError("keep mask length must equal the number of decisions")
        kept = [d for d, flag in zip(self._decisions, keep) if flag]
        return DecisionHistory(kept, shape=self.shape, pair=self.pair)

    def __repr__(self) -> str:
        return (
            f"DecisionHistory(decisions={len(self)}, shape={self.shape}, "
            f"duration={self.duration():.1f}s)"
        )
