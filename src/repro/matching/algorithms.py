"""Simple algorithmic (first-line) matchers.

The paper's pipeline is human-in-the-loop: algorithmic matchers propose
correspondences, humans validate them.  These lightweight string-similarity
matchers supply that algorithmic layer for the simulator and the examples:
they compute a full similarity matrix over a schema pair, from which a
reference-like candidate set or difficulty scores can be derived.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.matching.matrix import MatchingMatrix
from repro.matching.schema import Attribute, SchemaPair


def _normalize_name(name: str) -> str:
    """Lower-case a name and strip separators so tokens compare cleanly."""
    cleaned = []
    for char in name:
        if char.isalnum():
            cleaned.append(char.lower())
        else:
            cleaned.append(" ")
    return " ".join("".join(cleaned).split())


def _tokenize(name: str) -> set[str]:
    """Split a camelCase / snake_case identifier into lower-case tokens."""
    tokens: list[str] = []
    current = ""
    for char in name:
        if char.isupper() and current:
            tokens.append(current)
            current = char.lower()
        elif char.isalnum():
            current += char.lower()
        else:
            if current:
                tokens.append(current)
            current = ""
    if current:
        tokens.append(current)
    return set(tokens)


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance between two strings."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (char_a != char_b)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def name_similarity(a: str, b: str) -> float:
    """Normalised edit similarity in [0, 1]."""
    a_norm = _normalize_name(a)
    b_norm = _normalize_name(b)
    if not a_norm and not b_norm:
        return 1.0
    longest = max(len(a_norm), len(b_norm))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a_norm, b_norm) / longest


def token_jaccard(a: str, b: str) -> float:
    """Jaccard similarity between identifier token sets."""
    tokens_a = _tokenize(a)
    tokens_b = _tokenize(b)
    if not tokens_a and not tokens_b:
        return 1.0
    union = tokens_a | tokens_b
    if not union:
        return 1.0
    return len(tokens_a & tokens_b) / len(union)


class AlgorithmicMatcher(ABC):
    """An automatic matcher producing a similarity matrix for a schema pair."""

    name: str = "algorithmic"

    @abstractmethod
    def element_similarity(self, source: Attribute, target: Attribute) -> float:
        """Similarity in [0, 1] between two elements."""

    def match(self, pair: SchemaPair) -> MatchingMatrix:
        """Compute the full similarity matrix for ``pair``."""
        rows, cols = pair.shape
        matrix = np.zeros((rows, cols), dtype=float)
        for i, source_attribute in enumerate(pair.source.attributes):
            for j, target_attribute in enumerate(pair.target.attributes):
                matrix[i, j] = self.element_similarity(source_attribute, target_attribute)
        return MatchingMatrix(np.clip(matrix, 0.0, 1.0), pair=pair)


class NameSimilarityMatcher(AlgorithmicMatcher):
    """Edit-distance-based name similarity (a COMA-style string matcher)."""

    name = "name-similarity"

    def element_similarity(self, source: Attribute, target: Attribute) -> float:
        return name_similarity(source.name, target.name)


class TokenJaccardMatcher(AlgorithmicMatcher):
    """Token-overlap similarity, robust to word reordering in names."""

    name = "token-jaccard"

    def element_similarity(self, source: Attribute, target: Attribute) -> float:
        return token_jaccard(source.name, target.name)


class DataTypeMatcher(AlgorithmicMatcher):
    """Coarse similarity from declared data types (1.0 equal, 0.5 compatible)."""

    name = "data-type"

    _COMPATIBLE: frozenset[frozenset[str]] = frozenset(
        {
            frozenset({"date", "datetime"}),
            frozenset({"time", "datetime"}),
            frozenset({"int", "float"}),
            frozenset({"int", "string"}),
        }
    )

    def element_similarity(self, source: Attribute, target: Attribute) -> float:
        if source.data_type == target.data_type:
            return 1.0
        if frozenset({source.data_type, target.data_type}) in self._COMPATIBLE:
            return 0.5
        return 0.0


class CompositeMatcher(AlgorithmicMatcher):
    """Weighted combination of several matchers (the usual ensemble set-up)."""

    name = "composite"

    def __init__(
        self,
        matchers: Sequence[AlgorithmicMatcher] | None = None,
        weights: Sequence[float] | None = None,
    ) -> None:
        self.matchers = list(matchers) if matchers is not None else [
            NameSimilarityMatcher(),
            TokenJaccardMatcher(),
            DataTypeMatcher(),
        ]
        if weights is None:
            weights = [1.0] * len(self.matchers)
        if len(weights) != len(self.matchers):
            raise ValueError("weights must have one entry per matcher")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.weights = [w / total for w in weights]

    def element_similarity(self, source: Attribute, target: Attribute) -> float:
        return sum(
            weight * matcher.element_similarity(source, target)
            for matcher, weight in zip(self.matchers, self.weights)
        )
