"""The four expertise measures of Section II-B and accumulated curves.

* Precision (Eq. 2): correct decisions out of made decisions.
* Recall / thoroughness (Eq. 3): correct decisions out of all correct
  correspondences.
* Resolution (Eq. 4): Goodman-Kruskal gamma between confidence and
  correctness ("more confident when correct").
* Calibration (Eq. 5): mean confidence minus precision (lower is better;
  positive means over-confidence, negative under-confidence).

``accumulated_curves`` reproduces the elapsed-measure curves of Figures 1,
4, 5 and 6: the four measures recomputed after every sequential decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.matching.correspondence import ReferenceMatch
from repro.matching.history import DecisionHistory
from repro.matching.matrix import MatchingMatrix
from repro.stats.gamma import GammaResult, goodman_kruskal_gamma


def precision(matrix: MatchingMatrix, reference: ReferenceMatch) -> float:
    """Precision ``P(H) = |sigma ∩ Me+| / |sigma|`` (Eq. 2, left).

    An empty match has precision 0 by convention.
    """
    sigma = matrix.nonzero_entries()
    if not sigma:
        return 0.0
    correct = len(sigma & reference.positives)
    return correct / len(sigma)


def recall(matrix: MatchingMatrix, reference: ReferenceMatch) -> float:
    """Recall ``R(H) = |sigma ∩ Me+| / |Me+|`` (Eq. 3, left).

    An empty reference match yields recall 0 by convention.
    """
    if reference.n_positives == 0:
        return 0.0
    sigma = matrix.nonzero_entries()
    correct = len(sigma & reference.positives)
    return correct / reference.n_positives


def f_measure(matrix: MatchingMatrix, reference: ReferenceMatch) -> float:
    """Harmonic mean of precision and recall (not used for labels; reporting only)."""
    p = precision(matrix, reference)
    r = recall(matrix, reference)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


def resolution(
    history: DecisionHistory,
    reference: ReferenceMatch,
    random_state: Optional[int] = None,
) -> GammaResult:
    """Resolution ``Res(H)``: gamma(confidence, correctness) over final decisions.

    Following Eq. 4, the correlation is computed between the confidence of
    the matcher's (latest) decisions and whether the decided pair belongs to
    the reference match.
    """
    latest = history.latest_decisions()
    if not latest:
        return GammaResult(gamma=0.0, p_value=1.0, concordant=0, discordant=0)
    pairs = list(latest)
    confidences = [latest[pair].confidence for pair in pairs]
    correctness = [1.0 if reference.is_correct(*pair) else 0.0 for pair in pairs]
    return goodman_kruskal_gamma(confidences, correctness, random_state=random_state)


def calibration(history: DecisionHistory, reference: ReferenceMatch) -> float:
    """Calibration ``Cal(H) = mean confidence - P(H)`` (Eq. 5).

    Positive values indicate over-confidence, negative values
    under-confidence; values near zero indicate a calibrated matcher.
    """
    matrix = history.to_matrix()
    return history.mean_confidence() - precision(matrix, reference)


@dataclass(frozen=True)
class MatcherPerformance:
    """The four measures of a matcher, bundled for reporting."""

    precision: float
    recall: float
    resolution: float
    resolution_p_value: float
    calibration: float

    @property
    def f_measure(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    @property
    def absolute_calibration(self) -> float:
        return abs(self.calibration)


def evaluate_matcher(
    history: DecisionHistory,
    reference: ReferenceMatch,
    random_state: Optional[int] = None,
) -> MatcherPerformance:
    """Compute all four measures for a decision history."""
    matrix = history.to_matrix()
    gamma_result = resolution(history, reference, random_state=random_state)
    return MatcherPerformance(
        precision=precision(matrix, reference),
        recall=recall(matrix, reference),
        resolution=gamma_result.gamma,
        resolution_p_value=gamma_result.p_value,
        calibration=calibration(history, reference),
    )


@dataclass(frozen=True)
class AccumulatedCurves:
    """Per-decision elapsed measures (Figures 1, 4, 5, 6)."""

    precision: np.ndarray
    recall: np.ndarray
    mean_confidence: np.ndarray
    resolution: np.ndarray
    calibration: np.ndarray

    @property
    def n_decisions(self) -> int:
        return int(self.precision.size)


def accumulated_curves(
    history: DecisionHistory,
    reference: ReferenceMatch,
    compute_resolution: bool = True,
) -> AccumulatedCurves:
    """Measures recomputed after each sequential decision.

    Resolution after every prefix requires O(T^2) gamma computations; pass
    ``compute_resolution=False`` to skip it for long histories.
    """
    n = len(history)
    precisions = np.zeros(n)
    recalls = np.zeros(n)
    confidences = np.zeros(n)
    resolutions = np.zeros(n)
    calibrations = np.zeros(n)

    for k in range(1, n + 1):
        prefix = history.prefix(k)
        matrix = prefix.to_matrix()
        precisions[k - 1] = precision(matrix, reference)
        recalls[k - 1] = recall(matrix, reference)
        confidences[k - 1] = prefix.mean_confidence()
        calibrations[k - 1] = confidences[k - 1] - precisions[k - 1]
        if compute_resolution:
            resolutions[k - 1] = resolution(prefix, reference).gamma

    return AccumulatedCurves(
        precision=precisions,
        recall=recalls,
        mean_confidence=confidences,
        resolution=resolutions,
        calibration=calibrations,
    )


def population_performance(
    performances: Sequence[MatcherPerformance],
) -> dict[str, float]:
    """Average the four measures over a matcher population (Figures 8, 10, 11).

    Resolution and calibration are averaged both signed and in absolute
    value, matching the paper's reporting conventions.
    """
    if not performances:
        return {
            "precision": 0.0,
            "recall": 0.0,
            "resolution": 0.0,
            "abs_resolution": 0.0,
            "calibration": 0.0,
            "abs_calibration": 0.0,
        }
    return {
        "precision": float(np.mean([p.precision for p in performances])),
        "recall": float(np.mean([p.recall for p in performances])),
        "resolution": float(np.mean([p.resolution for p in performances])),
        "abs_resolution": float(np.mean([abs(p.resolution) for p in performances])),
        "calibration": float(np.mean([p.calibration for p in performances])),
        "abs_calibration": float(np.mean([abs(p.calibration) for p in performances])),
    }
