"""History preprocessing reproducing Section IV-A.

The paper removes the first three correspondences per participant (warm-up)
and drops elapsed-time outliers more than two standard deviations from the
participant's mean, because methodical pauses are unrelated to the target
term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.history import DecisionHistory
from repro.matching.matcher import HumanMatcher


@dataclass(frozen=True)
class PreprocessingConfig:
    """Knobs of the Section IV-A preprocessing pipeline."""

    warmup_decisions: int = 3
    outlier_std_threshold: float = 2.0
    remove_outliers: bool = True


def remove_warmup(history: DecisionHistory, warmup_decisions: int = 3) -> DecisionHistory:
    """Drop the first ``warmup_decisions`` decisions of a history."""
    return history.drop_first(warmup_decisions)


def remove_time_outliers(
    history: DecisionHistory, std_threshold: float = 2.0
) -> DecisionHistory:
    """Drop decisions whose elapsed time is an outlier for this matcher.

    A decision is an outlier when its inter-decision time deviates from the
    matcher's mean by more than ``std_threshold`` standard deviations.
    Histories with fewer than three decisions are returned unchanged.
    """
    if len(history) < 3:
        return history
    elapsed = history.inter_decision_times()
    mean = elapsed.mean()
    std = elapsed.std()
    if std == 0:
        return history
    keep = np.abs(elapsed - mean) <= std_threshold * std
    return history.filter(keep.tolist())


def preprocess_history(
    history: DecisionHistory, config: PreprocessingConfig | None = None
) -> DecisionHistory:
    """Apply warm-up removal followed by outlier removal."""
    config = config or PreprocessingConfig()
    processed = remove_warmup(history, config.warmup_decisions)
    if config.remove_outliers:
        processed = remove_time_outliers(processed, config.outlier_std_threshold)
    return processed


def preprocess_matcher(
    matcher: HumanMatcher, config: PreprocessingConfig | None = None
) -> HumanMatcher:
    """Apply the preprocessing pipeline to a matcher's history.

    The movement map is kept intact: mouse behaviour during warm-up still
    carries spatial information and the paper only filters decisions.
    """
    return HumanMatcher(
        matcher_id=matcher.matcher_id,
        history=preprocess_history(matcher.history, config),
        movement=matcher.movement,
        task=matcher.task,
        reference=matcher.reference,
        metadata=matcher.metadata,
    )
