"""Correspondences, matches (``sigma``) and reference matches (``Me``).

A *correspondence* is a single aligned element pair; a *match* is a set of
correspondences (the non-zero entries of a matching matrix); the *reference
match* is the ground truth ``Me`` compiled by domain experts, against which
matcher performance is measured (Section II-A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.matching.matrix import MatchingMatrix
from repro.matching.schema import SchemaPair


@dataclass(frozen=True, order=True)
class Correspondence:
    """An aligned element pair ``(i, j)`` with an optional confidence."""

    row: int
    col: int
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise ValueError("correspondence indices must be non-negative")
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence {self.confidence} outside [0, 1]")

    @property
    def pair(self) -> tuple[int, int]:
        return (self.row, self.col)


class Match:
    """A match ``sigma``: a set of correspondences over a schema pair."""

    def __init__(self, correspondences: Iterable[Correspondence] = ()) -> None:
        self._by_pair: dict[tuple[int, int], Correspondence] = {}
        for correspondence in correspondences:
            self.add(correspondence)

    @classmethod
    def from_matrix(cls, matrix: MatchingMatrix) -> "Match":
        """The match induced by the non-zero entries of ``matrix``."""
        return cls(
            Correspondence(i, j, confidence)
            for i, j, confidence in matrix.iter_nonzero()
        )

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]], confidence: float = 1.0) -> "Match":
        """A match consisting of the given index pairs at a fixed confidence."""
        return cls(Correspondence(i, j, confidence) for i, j in pairs)

    def add(self, correspondence: Correspondence) -> None:
        """Add (or overwrite) a correspondence."""
        self._by_pair[correspondence.pair] = correspondence

    def pairs(self) -> set[tuple[int, int]]:
        """The index pairs in the match."""
        return set(self._by_pair)

    def confidence_of(self, i: int, j: int) -> float:
        """Confidence of pair ``(i, j)``, or 0.0 if absent."""
        correspondence = self._by_pair.get((i, j))
        return correspondence.confidence if correspondence else 0.0

    def to_matrix(self, shape: tuple[int, int], pair: Optional[SchemaPair] = None) -> MatchingMatrix:
        """Materialise the match as a matching matrix of the given shape."""
        return MatchingMatrix.from_entries(
            shape,
            ((c.row, c.col, c.confidence) for c in self),
            pair=pair,
        )

    def intersection(self, other: "Match") -> set[tuple[int, int]]:
        """Index pairs shared with ``other``."""
        return self.pairs() & other.pairs()

    def __contains__(self, pair: object) -> bool:
        return pair in self._by_pair

    def __len__(self) -> int:
        return len(self._by_pair)

    def __iter__(self) -> Iterator[Correspondence]:
        return iter(self._by_pair.values())

    def __repr__(self) -> str:
        return f"Match(size={len(self)})"


class ReferenceMatch:
    """The ground-truth reference match ``Me`` for a schema pair.

    ``Me`` is conceptually a 0/1 matrix; here it is stored as the set of its
    positive entries ``Me+`` together with the matrix shape.
    """

    def __init__(self, shape: tuple[int, int], positives: Iterable[tuple[int, int]]) -> None:
        rows, cols = shape
        self.shape = shape
        self._positives: set[tuple[int, int]] = set()
        for i, j in positives:
            if not (0 <= i < rows and 0 <= j < cols):
                raise ValueError(f"reference pair {(i, j)} outside matrix of shape {shape}")
            self._positives.add((i, j))

    @classmethod
    def from_matrix(cls, matrix: MatchingMatrix) -> "ReferenceMatch":
        """Interpret the non-zero entries of ``matrix`` as ``Me+``."""
        return cls(matrix.shape, matrix.nonzero_entries())

    @property
    def positives(self) -> set[tuple[int, int]]:
        """``Me+``: the set of correct correspondences."""
        return set(self._positives)

    @property
    def n_positives(self) -> int:
        return len(self._positives)

    def is_correct(self, i: int, j: int) -> bool:
        """Whether the pair ``(i, j)`` belongs to the reference match."""
        return (i, j) in self._positives

    def to_matrix(self, pair: Optional[SchemaPair] = None) -> MatchingMatrix:
        """``Me`` as a 0/1 matching matrix."""
        return MatchingMatrix.from_entries(
            self.shape, ((i, j, 1.0) for i, j in self._positives), pair=pair
        )

    def correctness_vector(self, pairs: Iterable[tuple[int, int]]) -> np.ndarray:
        """A 0/1 vector marking which of ``pairs`` are correct."""
        return np.array([1.0 if p in self._positives else 0.0 for p in pairs])

    def __contains__(self, pair: object) -> bool:
        return pair in self._positives

    def __len__(self) -> int:
        return len(self._positives)

    def __repr__(self) -> str:
        return f"ReferenceMatch(shape={self.shape}, positives={len(self)})"
