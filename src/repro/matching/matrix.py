"""The matching matrix ``M`` (Section II-A1).

A matcher's output is conceptualised as a matrix ``M`` whose entry
``M[i, j]`` (a real number in [0, 1]) represents the degree of alignment
between the ``i``-th element of the source and the ``j``-th element of the
target.  The match ``sigma`` is the set of non-zero entries.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from repro.matching.schema import SchemaPair


class MatchingMatrix:
    """A dense, numpy-backed matching matrix with entries in ``[0, 1]``.

    Parameters
    ----------
    values:
        A 2-D array-like of confidences.  Values are validated to the unit
        interval.
    pair:
        The schema pair this matrix refers to (optional; when given, the
        matrix shape must agree with the pair's shape).
    """

    def __init__(self, values: np.ndarray, pair: Optional[SchemaPair] = None) -> None:
        array = np.asarray(values, dtype=float)
        if array.ndim != 2:
            raise ValueError(f"matching matrix must be 2-D, got shape {array.shape}")
        if array.size and (array.min() < 0.0 or array.max() > 1.0):
            raise ValueError("matching matrix entries must lie in [0, 1]")
        if pair is not None and array.shape != pair.shape:
            raise ValueError(
                f"matrix shape {array.shape} does not agree with pair shape {pair.shape}"
            )
        self._values = array
        self.pair = pair

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def zeros(cls, shape: tuple[int, int], pair: Optional[SchemaPair] = None) -> "MatchingMatrix":
        """An all-zero matrix of the given shape."""
        return cls(np.zeros(shape, dtype=float), pair=pair)

    @classmethod
    def for_pair(cls, pair: SchemaPair) -> "MatchingMatrix":
        """An all-zero matrix shaped for ``pair``."""
        return cls.zeros(pair.shape, pair=pair)

    @classmethod
    def from_entries(
        cls,
        shape: tuple[int, int],
        entries: Iterable[tuple[int, int, float]],
        pair: Optional[SchemaPair] = None,
    ) -> "MatchingMatrix":
        """Build a matrix from ``(i, j, confidence)`` triples."""
        matrix = np.zeros(shape, dtype=float)
        for i, j, confidence in entries:
            matrix[i, j] = confidence
        return cls(matrix, pair=pair)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def values(self) -> np.ndarray:
        """The underlying (read-only) array of confidences."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def shape(self) -> tuple[int, int]:
        return self._values.shape  # type: ignore[return-value]

    @property
    def n_rows(self) -> int:
        return self._values.shape[0]

    @property
    def n_cols(self) -> int:
        return self._values.shape[1]

    def __getitem__(self, index: tuple[int, int]) -> float:
        return float(self._values[index])

    def nonzero_entries(self) -> set[tuple[int, int]]:
        """The match ``sigma``: index pairs with a non-zero confidence."""
        rows, cols = np.nonzero(self._values)
        return set(zip(rows.tolist(), cols.tolist()))

    def iter_nonzero(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(i, j, confidence)`` for non-zero entries."""
        rows, cols = np.nonzero(self._values)
        for i, j in zip(rows.tolist(), cols.tolist()):
            yield i, j, float(self._values[i, j])

    @property
    def n_nonzero(self) -> int:
        return int(np.count_nonzero(self._values))

    @property
    def density(self) -> float:
        """Fraction of non-zero entries."""
        if self._values.size == 0:
            return 0.0
        return self.n_nonzero / self._values.size

    def mean_confidence(self) -> float:
        """Average confidence over the non-zero entries (0.0 for an empty match)."""
        nonzero = self._values[self._values > 0]
        if nonzero.size == 0:
            return 0.0
        return float(nonzero.mean())

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def with_entry(self, i: int, j: int, confidence: float) -> "MatchingMatrix":
        """A copy of the matrix with entry ``(i, j)`` set to ``confidence``."""
        if not 0.0 <= confidence <= 1.0:
            raise ValueError(f"confidence {confidence} outside [0, 1]")
        new_values = self._values.copy()
        new_values[i, j] = confidence
        return MatchingMatrix(new_values, pair=self.pair)

    def binarize(self, threshold: float = 0.0) -> "MatchingMatrix":
        """A 0/1 matrix: entries strictly above ``threshold`` become 1."""
        return MatchingMatrix((self._values > threshold).astype(float), pair=self.pair)

    def apply_threshold(self, threshold: float) -> "MatchingMatrix":
        """Zero out entries at or below ``threshold``, keeping confidences."""
        new_values = np.where(self._values > threshold, self._values, 0.0)
        return MatchingMatrix(new_values, pair=self.pair)

    def top_1_per_row(self) -> "MatchingMatrix":
        """Keep only the maximal entry per row (ties keep the first).

        Vectorized whole-matrix argmax; bitwise-identical to the retained
        row-loop oracle (:meth:`_top_1_per_row_loop`) — the kept values are
        the same array elements, argmax shares the loop's first-tie rule.
        """
        new_values = np.zeros_like(self._values)
        if self._values.shape[0] and self._values.shape[1]:
            row_max = self._values.max(axis=1)
            best_col = np.argmax(self._values, axis=1)
            keep = row_max > 0
            new_values[np.flatnonzero(keep), best_col[keep]] = row_max[keep]
        return MatchingMatrix(new_values, pair=self.pair)

    def _top_1_per_row_loop(self) -> "MatchingMatrix":
        """Original row-by-row implementation (retained oracle)."""
        new_values = np.zeros_like(self._values)
        for i in range(self.n_rows):
            row = self._values[i]
            if row.max() > 0:
                j = int(np.argmax(row))
                new_values[i, j] = row[j]
        return MatchingMatrix(new_values, pair=self.pair)

    def copy(self) -> "MatchingMatrix":
        return MatchingMatrix(self._values.copy(), pair=self.pair)

    def to_array(self) -> np.ndarray:
        """A writable copy of the confidences."""
        return self._values.copy()

    # ------------------------------------------------------------------ #
    # Dunder
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchingMatrix):
            return NotImplemented
        return self.shape == other.shape and bool(np.allclose(self._values, other._values))

    def __repr__(self) -> str:
        return (
            f"MatchingMatrix(shape={self.shape}, nonzero={self.n_nonzero}, "
            f"mean_conf={self.mean_confidence():.3f})"
        )
