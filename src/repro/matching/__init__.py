"""Schema-matching substrate: data model for schemata, matrices, and human behaviour.

This package implements the static and dynamic human matching model of
Section II of the paper:

* :mod:`repro.matching.schema` -- schemata / ontologies as trees of elements.
* :mod:`repro.matching.matrix` -- the matching matrix ``M``.
* :mod:`repro.matching.correspondence` -- correspondences, matches (``sigma``)
  and reference matches (``Me``).
* :mod:`repro.matching.history` -- the decision history ``H`` (Eq. 1).
* :mod:`repro.matching.mouse` -- the movement map ``G`` and heat maps.
* :mod:`repro.matching.matcher` -- a human matcher ``D = (H, G)``.
* :mod:`repro.matching.metrics` -- the four expertise measures (Eqs. 2-5)
  and accumulated (elapsed) curves.
* :mod:`repro.matching.preprocessing` -- warm-up and outlier filtering.
* :mod:`repro.matching.algorithms` -- simple first-line algorithmic matchers.
"""

from repro.matching.schema import Attribute, Schema, SchemaPair
from repro.matching.matrix import MatchingMatrix
from repro.matching.correspondence import Correspondence, Match, ReferenceMatch
from repro.matching.history import Decision, DecisionHistory
from repro.matching.mouse import MouseEvent, MouseEventType, MovementMap, HeatMap
from repro.matching.matcher import HumanMatcher, MatcherMetadata
from repro.matching.metrics import (
    precision,
    recall,
    f_measure,
    resolution,
    calibration,
    MatcherPerformance,
    evaluate_matcher,
    accumulated_curves,
)
from repro.matching.preprocessing import PreprocessingConfig, preprocess_history
from repro.matching.algorithms import (
    NameSimilarityMatcher,
    TokenJaccardMatcher,
    CompositeMatcher,
)

__all__ = [
    "Attribute",
    "Schema",
    "SchemaPair",
    "MatchingMatrix",
    "Correspondence",
    "Match",
    "ReferenceMatch",
    "Decision",
    "DecisionHistory",
    "MouseEvent",
    "MouseEventType",
    "MovementMap",
    "HeatMap",
    "HumanMatcher",
    "MatcherMetadata",
    "precision",
    "recall",
    "f_measure",
    "resolution",
    "calibration",
    "MatcherPerformance",
    "evaluate_matcher",
    "accumulated_curves",
    "PreprocessingConfig",
    "preprocess_history",
    "NameSimilarityMatcher",
    "TokenJaccardMatcher",
    "CompositeMatcher",
]
