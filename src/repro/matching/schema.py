"""Schemata and ontologies as trees of named elements.

The paper's matching tasks present two data sources ``S`` and ``S'`` whose
elements (schema attributes or ontology concepts) must be aligned.  Both
schemata and ontologies are represented here with the same structure: a
:class:`Schema` owning a forest of :class:`Attribute` nodes.  Attributes
carry metadata (data type, description, instance examples) mirroring the
"high information content" of the Purchase Order and OAEI tasks used in the
paper's evaluation (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence


@dataclass
class Attribute:
    """A single schema attribute / ontology element.

    Parameters
    ----------
    name:
        Element name, e.g. ``"poCode"``.
    data_type:
        Declared data type, e.g. ``"string"`` or ``"date"``.
    description:
        Free-text documentation shown to the human matcher in the
        properties box of the matching interface.
    examples:
        Instance examples (sample values).
    parent:
        Name of the parent element for nested schemata, or ``None`` for a
        root element.
    """

    name: str
    data_type: str = "string"
    description: str = ""
    examples: tuple[str, ...] = ()
    parent: Optional[str] = None

    @property
    def is_root(self) -> bool:
        """Whether the attribute sits at the top level of the schema tree."""
        return self.parent is None

    def full_path(self, schema: "Schema") -> str:
        """Dot-separated path from the root to this attribute."""
        parts = [self.name]
        current = self
        while current.parent is not None:
            current = schema.attribute(current.parent)
            parts.append(current.name)
        return ".".join(reversed(parts))


class Schema:
    """A named collection of attributes organised as a forest.

    The order of attributes is significant: it is the order in which the
    matching interface lists them, and the simulator uses it to model the
    top-to-bottom exploration of human matchers.
    """

    def __init__(self, name: str, attributes: Sequence[Attribute] = ()) -> None:
        self.name = name
        self._attributes: list[Attribute] = []
        self._by_name: dict[str, Attribute] = {}
        for attribute in attributes:
            self.add(attribute)

    def add(self, attribute: Attribute) -> None:
        """Add an attribute, enforcing unique names and known parents."""
        if attribute.name in self._by_name:
            raise ValueError(
                f"duplicate attribute {attribute.name!r} in schema {self.name!r}"
            )
        if attribute.parent is not None and attribute.parent not in self._by_name:
            raise ValueError(
                f"attribute {attribute.name!r} references unknown parent "
                f"{attribute.parent!r}"
            )
        self._attributes.append(attribute)
        self._by_name[attribute.name] = attribute

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"schema {self.name!r} has no attribute {name!r}") from None

    def index_of(self, name: str) -> int:
        """Positional index of the attribute called ``name``."""
        for index, attribute in enumerate(self._attributes):
            if attribute.name == name:
                return index
        raise KeyError(f"schema {self.name!r} has no attribute {name!r}")

    def children(self, name: str) -> list[Attribute]:
        """Direct children of the attribute called ``name``."""
        return [a for a in self._attributes if a.parent == name]

    def roots(self) -> list[Attribute]:
        """Top-level attributes."""
        return [a for a in self._attributes if a.is_root]

    def depth(self, name: str) -> int:
        """Nesting depth of an attribute (roots have depth 0)."""
        depth = 0
        current = self.attribute(name)
        while current.parent is not None:
            current = self.attribute(current.parent)
            depth += 1
        return depth

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return tuple(self._attributes)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        return f"Schema(name={self.name!r}, attributes={len(self)})"


@dataclass
class SchemaPair:
    """A matching task: align ``source`` (S) with ``target`` (S')."""

    source: Schema
    target: Schema
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{self.source.name}-vs-{self.target.name}"

    @property
    def shape(self) -> tuple[int, int]:
        """``(n, m)``: number of source and target elements."""
        return (len(self.source), len(self.target))

    @property
    def n_pairs(self) -> int:
        """Total number of candidate element pairs."""
        rows, cols = self.shape
        return rows * cols

    def pair_names(self, i: int, j: int) -> tuple[str, str]:
        """Names of the ``i``-th source and ``j``-th target attributes."""
        return (self.source.attributes[i].name, self.target.attributes[j].name)

    def iter_pairs(self) -> Iterable[tuple[int, int]]:
        """Iterate over all ``(i, j)`` index pairs."""
        rows, cols = self.shape
        for i in range(rows):
            for j in range(cols):
                yield (i, j)

    def __repr__(self) -> str:
        return f"SchemaPair(name={self.name!r}, shape={self.shape})"


def purchase_order_example() -> SchemaPair:
    """The running example of the paper (Figure 2): PO1 vs PO2."""
    po1 = Schema(
        "PO1",
        [
            Attribute("poDay", data_type="date", description="purchase order day"),
            Attribute("poTime", data_type="time", description="purchase order time"),
            Attribute("poCode", data_type="string", description="purchase order number"),
            Attribute("city", data_type="string", description="shipment city"),
        ],
    )
    po2 = Schema(
        "PO2",
        [
            Attribute("orderDate", data_type="datetime", description="order issuing date"),
            Attribute("orderNumber", data_type="string", description="order number"),
            Attribute("city", data_type="string", description="shipment city"),
        ],
    )
    return SchemaPair(source=po2, target=po1, name="purchase-order-example")
