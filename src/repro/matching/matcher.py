"""A human matcher ``D = (H, G)`` plus self-reported metadata (Section IV-A)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.matching.correspondence import ReferenceMatch
from repro.matching.history import DecisionHistory
from repro.matching.matrix import MatchingMatrix
from repro.matching.mouse import MovementMap
from repro.matching.schema import SchemaPair


@dataclass
class MatcherMetadata:
    """Self-reported personal information gathered before the experiment.

    The paper records gender, age, psychometric exam score, English level
    (1-5), domain knowledge (1-5), and whether the participant has basic
    database-management education.  These fields are *not* used by MExI's
    feature encoding; they exist to reproduce the Section IV-C analysis of
    correlations between personal information and performance.
    """

    gender: str = "unspecified"
    age: int = 0
    psychometric_score: int = 0
    english_level: int = 0
    domain_knowledge: int = 0
    db_education: bool = False


@dataclass
class HumanMatcher:
    """A human matcher: identity, behaviour ``(H, G)`` and task context."""

    matcher_id: str
    history: DecisionHistory
    movement: MovementMap
    task: Optional[SchemaPair] = None
    reference: Optional[ReferenceMatch] = None
    metadata: MatcherMetadata = field(default_factory=MatcherMetadata)

    def matrix(self) -> MatchingMatrix:
        """The matching matrix induced by the decision history (Eq. 1)."""
        return self.history.to_matrix()

    @property
    def n_decisions(self) -> int:
        return len(self.history)

    def truncated(self, n_decisions: int) -> "HumanMatcher":
        """The matcher restricted to its first ``n_decisions`` decisions.

        The movement map is truncated to the same time window, matching the
        paper's early-identification experiment (Figure 11).
        """
        history = self.history.prefix(n_decisions)
        if history.is_empty:
            movement = MovementMap(screen=self.movement.screen)
        else:
            cutoff = history.decisions[-1].timestamp
            movement = self.movement.until(cutoff)
        return HumanMatcher(
            matcher_id=self.matcher_id,
            history=history,
            movement=movement,
            task=self.task,
            reference=self.reference,
            metadata=self.metadata,
        )

    def submatcher(self, start: int, length: int, suffix: str = "") -> "HumanMatcher":
        """A sub-matcher built from a contiguous decision window.

        Sub-matchers are used only during training (Section IV-B1) to give
        the sequence models enough data.
        """
        history = self.history.window(start, length)
        if history.is_empty:
            movement = MovementMap(screen=self.movement.screen)
        else:
            start_time = history.decisions[0].timestamp
            end_time = history.decisions[-1].timestamp
            movement = self.movement.between(start_time, end_time)
        identifier = f"{self.matcher_id}{suffix or f'#sub{start}+{length}'}"
        return HumanMatcher(
            matcher_id=identifier,
            history=history,
            movement=movement,
            task=self.task,
            reference=self.reference,
            metadata=self.metadata,
        )

    def __repr__(self) -> str:
        return (
            f"HumanMatcher(id={self.matcher_id!r}, decisions={self.n_decisions}, "
            f"mouse_events={len(self.movement)})"
        )
