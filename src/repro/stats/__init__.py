"""Statistics substrate: association measures, bootstrap tests, descriptive helpers."""

from repro.stats.gamma import GammaResult, goodman_kruskal_gamma
from repro.stats.bootstrap import BootstrapTestResult, two_sample_bootstrap_test
from repro.stats.descriptive import RunningSummary, percentile_threshold, summarize, Summary

__all__ = [
    "GammaResult",
    "goodman_kruskal_gamma",
    "BootstrapTestResult",
    "two_sample_bootstrap_test",
    "percentile_threshold",
    "summarize",
    "Summary",
    "RunningSummary",
]
