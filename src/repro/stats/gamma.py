"""Goodman and Kruskal's gamma rank correlation (used as *resolution*, Eq. 4).

Resolution measures whether a matcher is more confident when correct than
when incorrect: gamma is computed between the reported confidences and the
0/1 correctness of the corresponding decisions.  Significance is assessed
with the asymptotic normal approximation on the gamma statistic, falling
back to a permutation test for very small samples.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats


def _content_seed(x: np.ndarray, y: np.ndarray) -> int:
    """A deterministic permutation seed derived from the data itself.

    The permutation p-value is a statistic of ``(x, y)``, so its Monte-Carlo
    seed must be a function of the data: seeding from OS entropy would make
    expert labels flip between runs for borderline samples, and seeding from
    a constant would correlate the draws across different matchers.  A
    content digest gives every distinct input its own fixed stream, making
    repeated evaluations reproducible across processes, call order and
    thread schedules.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(np.ascontiguousarray(x).tobytes())
    digest.update(np.ascontiguousarray(y).tobytes())
    return int.from_bytes(digest.digest(), "little")


@dataclass(frozen=True)
class GammaResult:
    """The gamma statistic together with its significance."""

    gamma: float
    p_value: float
    concordant: int
    discordant: int

    @property
    def is_significant(self) -> bool:
        """Significance at the paper's 0.05 level."""
        return self.p_value < 0.05


def _concordant_discordant(x: np.ndarray, y: np.ndarray) -> tuple[int, int]:
    """Count concordant and discordant pairs (ties ignored)."""
    n = x.size
    concordant = 0
    discordant = 0
    for i in range(n):
        dx = x[i + 1 :] - x[i]
        dy = y[i + 1 :] - y[i]
        product = dx * dy
        concordant += int(np.count_nonzero(product > 0))
        discordant += int(np.count_nonzero(product < 0))
    return concordant, discordant


def goodman_kruskal_gamma(
    x: Sequence[float],
    y: Sequence[float],
    n_permutations: int = 200,
    random_state: Optional[int] = None,
) -> GammaResult:
    """Compute Goodman-Kruskal gamma between ``x`` and ``y`` with a p-value.

    Parameters
    ----------
    x, y:
        Paired observations (e.g. confidences and 0/1 correctness).
    n_permutations:
        Number of label permutations used for the small-sample p-value.
    random_state:
        Seed for the permutation test.  ``None`` (default) derives the seed
        from the data content, so identical inputs always produce identical
        p-values (required for reproducible expert labels).

    Returns
    -------
    GammaResult
        gamma in [-1, 1]; gamma is 0 (p-value 1.0) when no untied pairs exist.
    """
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.shape != y_array.shape:
        raise ValueError("x and y must have the same length")
    if x_array.ndim != 1:
        raise ValueError("x and y must be 1-D sequences")

    concordant, discordant = _concordant_discordant(x_array, y_array)
    total = concordant + discordant
    if total == 0:
        return GammaResult(gamma=0.0, p_value=1.0, concordant=0, discordant=0)

    gamma = (concordant - discordant) / total

    n = x_array.size
    if n >= 10:
        # Asymptotic standard error under the null (Goodman & Kruskal 1963).
        se = np.sqrt(total / (n * (1 - gamma**2))) if abs(gamma) < 1.0 else np.inf
        if np.isfinite(se) and se > 0:
            z = gamma * se
            p_value = float(2.0 * scipy_stats.norm.sf(abs(z)))
        else:
            p_value = 0.0 if n > 2 else 1.0
    else:
        # Permutation test for small samples.
        if random_state is None:
            random_state = _content_seed(x_array, y_array)
        rng = np.random.default_rng(random_state)
        extreme = 0
        for _ in range(n_permutations):
            permuted = rng.permutation(y_array)
            c, d = _concordant_discordant(x_array, permuted)
            t = c + d
            permuted_gamma = 0.0 if t == 0 else (c - d) / t
            if abs(permuted_gamma) >= abs(gamma) - 1e-12:
                extreme += 1
        p_value = (extreme + 1) / (n_permutations + 1)

    return GammaResult(
        gamma=float(gamma),
        p_value=float(min(max(p_value, 0.0), 1.0)),
        concordant=concordant,
        discordant=discordant,
    )
