"""Descriptive statistics helpers: percentile thresholds and summaries.

The paper's cognitive thresholds are defined relative to the training
population: ``delta_Res`` is the 80th percentile of train resolutions and
``delta_Cal`` the 20th percentile of absolute train calibrations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def percentile_threshold(values: Sequence[float], percentile: float) -> float:
    """The ``percentile``-th percentile of ``values`` (linear interpolation).

    Raises ``ValueError`` on an empty sequence so callers never silently use
    a threshold computed from no data.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot compute a percentile of an empty sequence")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must lie in [0, 100]")
    return float(np.percentile(array, percentile))


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    mean: float
    std: float
    minimum: float
    median: float
    maximum: float
    count: int


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a sample (an empty sample yields an all-zero summary)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return Summary(mean=0.0, std=0.0, minimum=0.0, median=0.0, maximum=0.0, count=0)
    minimum = float(array.min())
    maximum = float(array.max())
    # np.mean's pairwise summation can land strictly outside [min, max] for
    # near-equal inputs; fsum is exactly rounded, and the clamp guarantees
    # the ordering invariant min <= mean <= max regardless.
    mean = math.fsum(array) / array.size
    mean = min(max(mean, minimum), maximum)
    return Summary(
        mean=mean,
        std=float(array.std()),
        minimum=minimum,
        median=float(np.median(array)),
        maximum=maximum,
        count=int(array.size),
    )
