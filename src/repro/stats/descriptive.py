"""Descriptive statistics helpers: percentile thresholds and summaries.

The paper's cognitive thresholds are defined relative to the training
population: ``delta_Res`` is the 80th percentile of train resolutions and
``delta_Cal`` the 20th percentile of absolute train calibrations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def percentile_threshold(values: Sequence[float], percentile: float) -> float:
    """The ``percentile``-th percentile of ``values`` (linear interpolation).

    Raises ``ValueError`` on an empty sequence so callers never silently use
    a threshold computed from no data.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot compute a percentile of an empty sequence")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must lie in [0, 100]")
    return float(np.percentile(array, percentile))


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    mean: float
    std: float
    minimum: float
    median: float
    maximum: float
    count: int


class RunningSummary:
    """A mergeable online summary (Welford / Chan et al. count-mean-M2).

    Maintains ``count``, ``mean``, the centred second moment ``M2`` and the
    running ``minimum`` / ``maximum`` of a stream of values, updatable one
    value (:meth:`push`) or one chunk (:meth:`update`) at a time, and
    mergeable across independently-maintained summaries (:meth:`merge`)
    with the parallel-variance combination formula.  The streaming session
    layer uses it to keep per-session descriptive statistics current
    without revisiting old events.

    Agreement contract (asserted by ``tests/stats/test_descriptive.py``):
    for any split of a sample into chunks, chunked updates and pairwise
    merges reproduce :func:`summarize`'s ``mean`` / ``std`` / ``min`` /
    ``max`` / ``count`` to tight floating-point tolerance (the summation
    orders differ, so bitwise equality is not guaranteed).  The median is
    intentionally absent: it cannot be maintained in O(1) state.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(
        self,
        count: int = 0,
        mean: float = 0.0,
        m2: float = 0.0,
        minimum: float = math.inf,
        maximum: float = -math.inf,
    ) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0 and (mean != 0.0 or m2 != 0.0):
            raise ValueError("an empty summary must have zero mean and M2")
        if m2 < 0:
            raise ValueError("M2 must be non-negative")
        self.count = int(count)
        self.mean = float(mean)
        self.m2 = float(m2)
        self.minimum = float(minimum)
        self.maximum = float(maximum)

    def push(self, value: float) -> "RunningSummary":
        """Consume one value (Welford's single-pass update); returns self."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        return self

    def update(self, values: Sequence[float]) -> "RunningSummary":
        """Consume a chunk of values in one vectorized step; returns self.

        The chunk's count/mean/M2 are computed with NumPy and folded in via
        the same combination formula as :meth:`merge`, so arbitrary
        chunkings of a stream agree with each other (and with
        :func:`summarize`) to tight tolerance.
        """
        array = np.asarray(values, dtype=float).ravel()
        if array.size == 0:
            return self
        if array.size == 1:
            return self.push(float(array[0]))
        chunk_mean = float(array.mean())
        chunk = RunningSummary(
            count=int(array.size),
            mean=chunk_mean,
            m2=float(((array - chunk_mean) ** 2).sum()),
            minimum=float(array.min()),
            maximum=float(array.max()),
        )
        self._merge_in_place(chunk)
        return self

    def merge(self, other: "RunningSummary") -> "RunningSummary":
        """The summary of the two underlying samples pooled (non-mutating)."""
        merged = self.copy()
        merged._merge_in_place(other)
        return merged

    def _merge_in_place(self, other: "RunningSummary") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * (other.count / total)
        self.m2 += other.m2 + delta * delta * (self.count * other.count / total)
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def copy(self) -> "RunningSummary":
        return RunningSummary(
            count=self.count,
            mean=self.mean,
            m2=self.m2,
            minimum=self.minimum,
            maximum=self.maximum,
        )

    @property
    def variance(self) -> float:
        """Population variance (``ddof=0``, matching ``numpy.std``)."""
        if self.count == 0:
            return 0.0
        return max(self.m2 / self.count, 0.0)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def state(self) -> tuple[int, float, float, float, float]:
        """The five scalars of the accumulator (for checkpointing)."""
        return (self.count, self.mean, self.m2, self.minimum, self.maximum)

    @classmethod
    def from_state(cls, state: Sequence[float]) -> "RunningSummary":
        count, mean, m2, minimum, maximum = state
        return cls(
            count=int(count),
            mean=float(mean),
            m2=float(m2),
            minimum=float(minimum),
            maximum=float(maximum),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunningSummary):
            return NotImplemented
        return self.state() == other.state()

    def __repr__(self) -> str:
        if self.count == 0:
            return "RunningSummary(count=0)"
        return (
            f"RunningSummary(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g}, min={self.minimum:.6g}, max={self.maximum:.6g})"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a sample (an empty sample yields an all-zero summary)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return Summary(mean=0.0, std=0.0, minimum=0.0, median=0.0, maximum=0.0, count=0)
    minimum = float(array.min())
    maximum = float(array.max())
    # np.mean's pairwise summation can land strictly outside [min, max] for
    # near-equal inputs; fsum is exactly rounded, and the clamp guarantees
    # the ordering invariant min <= mean <= max regardless.
    mean = math.fsum(array) / array.size
    mean = min(max(mean, minimum), maximum)
    return Summary(
        mean=mean,
        std=float(array.std()),
        minimum=minimum,
        median=float(np.median(array)),
        maximum=maximum,
        count=int(array.size),
    )
