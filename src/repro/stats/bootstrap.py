"""Two-sample bootstrap hypothesis test.

The paper marks statistically significant improvements of MExI over the top
performing baseline with a two-sample bootstrap hypothesis test (Section
IV-D).  The test resamples both samples under the pooled null hypothesis and
compares the observed difference in means against the bootstrap distribution.

The resample loop is vectorized: all resample indices are pre-drawn from the
seed stream as two ``(n_bootstrap, n)`` matrices and the bootstrap means are
computed in whole-matrix NumPy operations.  Above a size threshold, the
pre-drawn matrices are split row-wise across :class:`repro.runtime.TaskRunner`
workers; row-wise means are independent of the chunking, so every backend
and worker count produces bitwise-identical p-values (serial is the oracle).
The seed implementation's per-iteration ``rng.choice`` loop is retained as
``resample="loop"`` — it consumes the RNG stream in a different order, so
its p-values differ from the matrix path for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.runtime import RuntimeSpec, resolve_runner

#: Minimum total work — resample-matrix elements, ``n_bootstrap * (|a| + |b|)``
#: — before a non-serial runtime is worth the fan-out overhead; below it the
#: vectorized serial path runs regardless (it finishes typical fold-score
#: tests in well under a millisecond, far cheaper than starting a pool).
PARALLEL_RESAMPLE_THRESHOLD = 1_000_000

#: Row-block budget (index-matrix elements) for the serial matrix path:
#: draws and gathers happen at most this many elements at a time, bounding
#: memory at ~tens of MB for arbitrarily large samples.  Block boundaries
#: do not affect results — consecutive same-bound ``integers`` draws
#: concatenate to the one-shot stream, and row-wise means are independent
#: of the blocking — so this is a memory knob, not part of the p-value.
MATRIX_BLOCK_ELEMENTS = 1 << 23


@dataclass(frozen=True)
class BootstrapTestResult:
    """Outcome of a two-sample bootstrap test on the difference of means."""

    observed_difference: float
    p_value: float
    n_bootstrap: int

    @property
    def is_significant(self) -> bool:
        """Significance at the paper's 0.05 level."""
        return self.p_value < 0.05


def _count_extreme_task(task, shared) -> int:
    """Extreme-count of one chunk of pre-drawn resample index matrices."""
    a_null, b_null, observed, alternative = shared
    index_a, index_b = task
    differences = a_null[index_a].mean(axis=1) - b_null[index_b].mean(axis=1)
    return _count_extreme(differences, observed, alternative)


def _count_extreme(differences: np.ndarray, observed: float, alternative: str) -> int:
    if alternative == "greater":
        return int(np.count_nonzero(differences >= observed - 1e-12))
    if alternative == "less":
        return int(np.count_nonzero(differences <= observed + 1e-12))
    return int(np.count_nonzero(np.abs(differences) >= abs(observed) - 1e-12))


def _resample_means_blocked(
    rng: np.random.Generator, values: np.ndarray, n_bootstrap: int
) -> np.ndarray:
    """Bootstrap means of ``values`` with memory-bounded block-wise draws.

    Identical to drawing one ``(n_bootstrap, n)`` index matrix and taking
    row means, but only one block of indices is alive at a time.
    """
    block_rows = max(1, MATRIX_BLOCK_ELEMENTS // max(1, values.size))
    means = np.empty(n_bootstrap)
    for start in range(0, n_bootstrap, block_rows):
        stop = min(start + block_rows, n_bootstrap)
        indices = rng.integers(0, values.size, size=(stop - start, values.size))
        means[start:stop] = values[indices].mean(axis=1)
    return means


def _count_extreme_loop(
    a_null: np.ndarray,
    b_null: np.ndarray,
    n_bootstrap: int,
    observed: float,
    alternative: str,
    rng: np.random.Generator,
) -> int:
    """The seed implementation's per-iteration resample loop (legacy oracle)."""
    extreme = 0
    for _ in range(n_bootstrap):
        resample_a = rng.choice(a_null, size=a_null.size, replace=True)
        resample_b = rng.choice(b_null, size=b_null.size, replace=True)
        difference = resample_a.mean() - resample_b.mean()
        if alternative == "greater":
            if difference >= observed - 1e-12:
                extreme += 1
        elif alternative == "less":
            if difference <= observed + 1e-12:
                extreme += 1
        else:
            if abs(difference) >= abs(observed) - 1e-12:
                extreme += 1
    return extreme


def two_sample_bootstrap_test(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    n_bootstrap: int = 2000,
    alternative: str = "greater",
    random_state: Optional[int] = None,
    resample: str = "matrix",
    runtime: RuntimeSpec = None,
    parallel_threshold: int = PARALLEL_RESAMPLE_THRESHOLD,
) -> BootstrapTestResult:
    """Test whether ``sample_a`` has a larger mean than ``sample_b``.

    Parameters
    ----------
    sample_a, sample_b:
        Per-fold (or per-matcher) scores of the two methods being compared.
    n_bootstrap:
        Number of bootstrap resamples.
    alternative:
        ``"greater"`` (one-sided, a > b), ``"less"`` or ``"two-sided"``.
    random_state:
        Seed for reproducibility.
    resample:
        ``"matrix"`` (default) pre-draws all resample indices as two
        matrices and vectorizes the bootstrap means; ``"loop"`` keeps the
        historical per-iteration ``rng.choice`` loop (different RNG
        consumption order, hence different p-values for the same seed).
    runtime:
        Runtime selection (:class:`~repro.runtime.TaskRunner`, spec string
        or ``None`` for the ``REPRO_RUNTIME`` default).  Only the matrix
        path parallelises, and only when the total work
        (``n_bootstrap * (len(a) + len(b))`` matrix elements) reaches
        ``parallel_threshold``; p-values are bitwise identical to the
        serial matrix path on every backend and worker count.
    parallel_threshold:
        Minimum resample-matrix element count before a non-serial runtime
        fans out.
    """
    if alternative not in {"greater", "less", "two-sided"}:
        raise ValueError(f"unknown alternative {alternative!r}")
    if resample not in {"matrix", "loop"}:
        raise ValueError(f"unknown resample strategy {resample!r}")
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")

    observed = float(a.mean() - b.mean())

    # Shift both samples to the pooled mean so the null (equal means) holds.
    pooled_mean = float(np.concatenate([a, b]).mean())
    a_null = a - a.mean() + pooled_mean
    b_null = b - b.mean() + pooled_mean

    rng = np.random.default_rng(random_state)
    if resample == "loop":
        extreme = _count_extreme_loop(a_null, b_null, n_bootstrap, observed, alternative, rng)
    else:
        runner = resolve_runner(runtime)
        total_elements = n_bootstrap * (a.size + b.size)
        if runner.backend == "serial" or total_elements < parallel_threshold:
            # Block-wise draws bound memory for arbitrarily large samples;
            # the stream and the row means match the one-shot matrices
            # bitwise, so serial stays the oracle for the parallel path.
            a_means = _resample_means_blocked(rng, a_null, n_bootstrap)
            b_means = _resample_means_blocked(rng, b_null, n_bootstrap)
            extreme = _count_extreme(a_means - b_means, observed, alternative)
        else:
            # Pre-drawn randomness: the full index matrices come out of the
            # seed stream (in the serial path's a-then-b order) before any
            # fan-out, so workers never touch the generator.  This trades
            # the serial path's bounded memory for cores.
            index_a = rng.integers(0, a.size, size=(n_bootstrap, a.size))
            index_b = rng.integers(0, b.size, size=(n_bootstrap, b.size))
            shared = (a_null, b_null, observed, alternative)
            # array_split returns row-range views — no second copy of the
            # matrices — and the chunking cannot affect the counts.
            tasks = [
                (rows_a, rows_b)
                for rows_a, rows_b in zip(
                    np.array_split(index_a, runner.max_workers),
                    np.array_split(index_b, runner.max_workers),
                )
                if rows_a.size
            ]
            extreme = sum(runner.map(_count_extreme_task, tasks, context=shared))

    p_value = (extreme + 1) / (n_bootstrap + 1)
    return BootstrapTestResult(
        observed_difference=observed,
        p_value=float(p_value),
        n_bootstrap=n_bootstrap,
    )
