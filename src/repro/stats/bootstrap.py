"""Two-sample bootstrap hypothesis test.

The paper marks statistically significant improvements of MExI over the top
performing baseline with a two-sample bootstrap hypothesis test (Section
IV-D).  The test resamples both samples under the pooled null hypothesis and
compares the observed difference in means against the bootstrap distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class BootstrapTestResult:
    """Outcome of a two-sample bootstrap test on the difference of means."""

    observed_difference: float
    p_value: float
    n_bootstrap: int

    @property
    def is_significant(self) -> bool:
        """Significance at the paper's 0.05 level."""
        return self.p_value < 0.05


def two_sample_bootstrap_test(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    n_bootstrap: int = 2000,
    alternative: str = "greater",
    random_state: Optional[int] = None,
) -> BootstrapTestResult:
    """Test whether ``sample_a`` has a larger mean than ``sample_b``.

    Parameters
    ----------
    sample_a, sample_b:
        Per-fold (or per-matcher) scores of the two methods being compared.
    n_bootstrap:
        Number of bootstrap resamples.
    alternative:
        ``"greater"`` (one-sided, a > b), ``"less"`` or ``"two-sided"``.
    random_state:
        Seed for reproducibility.
    """
    if alternative not in {"greater", "less", "two-sided"}:
        raise ValueError(f"unknown alternative {alternative!r}")
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")

    observed = float(a.mean() - b.mean())

    # Shift both samples to the pooled mean so the null (equal means) holds.
    pooled_mean = float(np.concatenate([a, b]).mean())
    a_null = a - a.mean() + pooled_mean
    b_null = b - b.mean() + pooled_mean

    rng = np.random.default_rng(random_state)
    extreme = 0
    for _ in range(n_bootstrap):
        resample_a = rng.choice(a_null, size=a.size, replace=True)
        resample_b = rng.choice(b_null, size=b.size, replace=True)
        difference = resample_a.mean() - resample_b.mean()
        if alternative == "greater":
            if difference >= observed - 1e-12:
                extreme += 1
        elif alternative == "less":
            if difference <= observed + 1e-12:
                extreme += 1
        else:
            if abs(difference) >= abs(observed) - 1e-12:
                extreme += 1

    p_value = (extreme + 1) / (n_bootstrap + 1)
    return BootstrapTestResult(
        observed_difference=observed,
        p_value=float(p_value),
        n_bootstrap=n_bootstrap,
    )
