"""Matching predictors substrate (Sagi & Gal; the LRSM feature family).

A matching predictor is a function that quantifies the quality of a match,
given only the matching matrix (no reference match).  The paper uses
precision-oriented predictors for the Precision features and
uncertainty/diversity-oriented predictors (matrix norms, entropy) for the
Thoroughness features, following the LRSM work (Gal, Roitman & Shraga).

The public surface is a registry of named predictors plus convenience
helpers that evaluate families of predictors on a matrix.
"""

from repro.predictors.base import (
    MatchingPredictor,
    PredictorRegistry,
    default_registry,
    evaluate_predictors,
)
from repro.predictors.structural import (
    DominantsPredictor,
    BinaryMaxPredictor,
    BinaryPrecisionMaxPredictor,
    MaxConfidencePredictor,
    AverageConfidencePredictor,
    CoveragePredictor,
    MutualDominancePredictor,
)
from repro.predictors.norms import (
    FrobeniusNormPredictor,
    LInfinityNormPredictor,
    L1NormPredictor,
    SpectralNormPredictor,
)
from repro.predictors.entropy import (
    MatrixEntropyPredictor,
    RowEntropyPredictor,
    ConfidenceVariancePredictor,
    DiversityPredictor,
)
from repro.predictors.pca_predictors import PCAPredictor

__all__ = [
    "MatchingPredictor",
    "PredictorRegistry",
    "default_registry",
    "evaluate_predictors",
    "DominantsPredictor",
    "BinaryMaxPredictor",
    "BinaryPrecisionMaxPredictor",
    "MaxConfidencePredictor",
    "AverageConfidencePredictor",
    "CoveragePredictor",
    "MutualDominancePredictor",
    "FrobeniusNormPredictor",
    "LInfinityNormPredictor",
    "L1NormPredictor",
    "SpectralNormPredictor",
    "MatrixEntropyPredictor",
    "RowEntropyPredictor",
    "ConfidenceVariancePredictor",
    "DiversityPredictor",
    "PCAPredictor",
]
