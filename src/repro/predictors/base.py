"""Matching-predictor protocol and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Mapping

from repro.matching.matrix import MatchingMatrix


class MatchingPredictor(ABC):
    """A function that scores a matching matrix without a reference match.

    Predictors are small, stateless objects; each exposes a ``name`` used as
    the feature name in the MExI feature vector and an ``orientation``
    declaring whether high values were empirically associated with
    precision or recall in the predictor literature.
    """

    #: Feature name (unique within a registry).
    name: str = "predictor"
    #: "precision", "recall" or "neutral" -- the quality facet the predictor leans towards.
    orientation: str = "neutral"

    @abstractmethod
    def __call__(self, matrix: MatchingMatrix) -> float:
        """Score the matrix.  Implementations must return a finite float."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, orientation={self.orientation!r})"


class PredictorRegistry:
    """An ordered collection of named predictors."""

    def __init__(self, predictors: Iterable[MatchingPredictor] = ()) -> None:
        self._predictors: dict[str, MatchingPredictor] = {}
        for predictor in predictors:
            self.register(predictor)

    def register(self, predictor: MatchingPredictor) -> None:
        """Add a predictor, enforcing unique names."""
        if predictor.name in self._predictors:
            raise ValueError(f"duplicate predictor name {predictor.name!r}")
        self._predictors[predictor.name] = predictor

    def names(self) -> list[str]:
        return list(self._predictors)

    def by_orientation(self, orientation: str) -> "PredictorRegistry":
        """A sub-registry containing only predictors of the given orientation."""
        return PredictorRegistry(
            p for p in self._predictors.values() if p.orientation == orientation
        )

    def evaluate(self, matrix: MatchingMatrix) -> dict[str, float]:
        """Apply every predictor to ``matrix`` and collect named scores."""
        return {name: float(predictor(matrix)) for name, predictor in self._predictors.items()}

    def __len__(self) -> int:
        return len(self._predictors)

    def __iter__(self) -> Iterator[MatchingPredictor]:
        return iter(self._predictors.values())

    def __contains__(self, name: object) -> bool:
        return name in self._predictors

    def __getitem__(self, name: str) -> MatchingPredictor:
        return self._predictors[name]


def default_registry() -> PredictorRegistry:
    """The predictor set used for the LRSM features (Phi_LRSM)."""
    # Imported here to avoid import cycles between base and the concrete modules.
    from repro.predictors.structural import (
        DominantsPredictor,
        BinaryMaxPredictor,
        BinaryPrecisionMaxPredictor,
        MaxConfidencePredictor,
        AverageConfidencePredictor,
        CoveragePredictor,
        MutualDominancePredictor,
    )
    from repro.predictors.norms import (
        FrobeniusNormPredictor,
        LInfinityNormPredictor,
        L1NormPredictor,
        SpectralNormPredictor,
    )
    from repro.predictors.entropy import (
        MatrixEntropyPredictor,
        RowEntropyPredictor,
        ConfidenceVariancePredictor,
        DiversityPredictor,
    )
    from repro.predictors.pca_predictors import PCAPredictor

    return PredictorRegistry(
        [
            DominantsPredictor(),
            MutualDominancePredictor(),
            BinaryMaxPredictor(),
            BinaryPrecisionMaxPredictor(),
            MaxConfidencePredictor(),
            AverageConfidencePredictor(),
            CoveragePredictor(),
            FrobeniusNormPredictor(),
            LInfinityNormPredictor(),
            L1NormPredictor(),
            SpectralNormPredictor(),
            MatrixEntropyPredictor(),
            RowEntropyPredictor(),
            ConfidenceVariancePredictor(),
            DiversityPredictor(),
            PCAPredictor(component=1),
            PCAPredictor(component=2),
        ]
    )


def evaluate_predictors(
    matrix: MatchingMatrix, registry: PredictorRegistry | None = None
) -> Mapping[str, float]:
    """Evaluate the default (or a custom) predictor registry on a matrix."""
    registry = registry or default_registry()
    return registry.evaluate(matrix)
