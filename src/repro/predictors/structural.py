"""Structural matching predictors (dominants, binary max families, coverage).

These predictors follow Sagi & Gal's schema-matching-prediction catalogue:
they look at the *structure* of the confidence matrix -- how concentrated
the mass is on row/column maxima -- and were shown to correlate with
precision.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import oracle_active
from repro.matching.matrix import MatchingMatrix
from repro.predictors.base import MatchingPredictor


def _nonzero(matrix: MatchingMatrix) -> np.ndarray:
    values = matrix.values
    return values[values > 0]


def _dominant_mask(values: np.ndarray) -> np.ndarray:
    """Non-zero entries that are maximal in both their row and column."""
    row_max = values.max(axis=1)
    col_max = values.max(axis=0)
    return (values > 0) & (values >= row_max[:, None]) & (values >= col_max[None, :])


class DominantsPredictor(MatchingPredictor):
    """Proportion of selected pairs that are dominant in both their row and column.

    A dominant entry holds the maximal confidence of its row *and* its
    column; a high proportion of dominants indicates a decisive, precise
    match (the ``dom`` feature of Table IV).  The fast path is a boolean
    mask over the whole matrix; counts are integers, so it is
    bitwise-identical to the retained entry-loop oracle.
    """

    name = "dom"
    orientation = "precision"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        if oracle_active():
            nonzero = matrix.nonzero_entries()
            if not nonzero:
                return 0.0
            row_max = values.max(axis=1)
            col_max = values.max(axis=0)
            dominants = sum(
                1
                for (i, j) in nonzero
                if values[i, j] >= row_max[i] and values[i, j] >= col_max[j]
            )
            return dominants / len(nonzero)
        n_nonzero = int(np.count_nonzero(values))
        if not n_nonzero:
            return 0.0
        return int(_dominant_mask(values).sum()) / n_nonzero


class MutualDominancePredictor(MatchingPredictor):
    """Average confidence of mutually dominant entries (0 when none exist).

    The fast path extracts the dominant entries with one mask (row-major
    order, exactly the retained double-loop oracle's visit order), so the
    averaged values — and hence the mean — are bitwise identical.
    """

    name = "mcd"
    orientation = "precision"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        if values.size == 0:
            return 0.0
        if oracle_active():
            row_max = values.max(axis=1)
            col_max = values.max(axis=0)
            dominant_values = [
                values[i, j]
                for i in range(values.shape[0])
                for j in range(values.shape[1])
                if values[i, j] > 0 and values[i, j] >= row_max[i] and values[i, j] >= col_max[j]
            ]
            if not dominant_values:
                return 0.0
            return float(np.mean(dominant_values))
        dominant_values = values[_dominant_mask(values)]
        if not dominant_values.size:
            return 0.0
        return float(np.mean(dominant_values))


class BinaryMaxPredictor(MatchingPredictor):
    """BMM: fraction of rows whose maximum is selected (non-zero).

    Measures how much of the source schema the matcher attempted with a
    decisive choice.
    """

    name = "bmm"
    orientation = "precision"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        if values.shape[0] == 0:
            return 0.0
        covered_rows = np.count_nonzero(values.max(axis=1) > 0)
        return covered_rows / values.shape[0]


class BinaryPrecisionMaxPredictor(MatchingPredictor):
    """BPM: average of row maxima over the rows that were addressed.

    High row maxima indicate that when the matcher commits to a pair it does
    so with high confidence -- a precision-leaning signal.
    """

    name = "bpm"
    orientation = "precision"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        if values.shape[0] == 0:
            return 0.0
        row_max = values.max(axis=1)
        addressed = row_max[row_max > 0]
        if addressed.size == 0:
            return 0.0
        return float(addressed.mean())


class MaxConfidencePredictor(MatchingPredictor):
    """The single maximal confidence in the matrix."""

    name = "max_conf"
    orientation = "precision"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        if values.size == 0:
            return 0.0
        return float(values.max())


class AverageConfidencePredictor(MatchingPredictor):
    """Average confidence over selected (non-zero) entries."""

    name = "avg_conf"
    orientation = "precision"

    def __call__(self, matrix: MatchingMatrix) -> float:
        return matrix.mean_confidence()


class CoveragePredictor(MatchingPredictor):
    """Fraction of candidate pairs addressed: the match density.

    Density grows with the number of decisions, making it a recall-leaning
    predictor.
    """

    name = "coverage"
    orientation = "recall"

    def __call__(self, matrix: MatchingMatrix) -> float:
        return matrix.density
