"""Entropy, variance and diversity predictors (uncertainty-oriented)."""

from __future__ import annotations

import numpy as np

from repro.kernels import oracle_active
from repro.matching.matrix import MatchingMatrix
from repro.predictors.base import MatchingPredictor


def _entropy(probabilities: np.ndarray) -> float:
    """Shannon entropy of a (possibly unnormalised) non-negative vector."""
    total = probabilities.sum()
    if total <= 0:
        return 0.0
    p = probabilities / total
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


class MatrixEntropyPredictor(MatchingPredictor):
    """Entropy of the whole confidence matrix, normalised to [0, 1].

    Uniform mass over many candidate pairs (high uncertainty) yields high
    entropy; a few decisive correspondences yield low entropy.
    """

    name = "entropy"
    orientation = "recall"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values.ravel()
        if values.size <= 1:
            return 0.0
        raw = _entropy(values)
        max_entropy = np.log2(values.size)
        if max_entropy == 0:
            return 0.0
        return raw / max_entropy


class RowEntropyPredictor(MatchingPredictor):
    """Average per-row entropy (how undecided the matcher is per source element)."""

    name = "row_entropy"
    orientation = "recall"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        if values.size == 0 or values.shape[1] <= 1:
            return 0.0
        max_entropy = np.log2(values.shape[1])
        if oracle_active():
            entropies = [
                _entropy(values[i]) / max_entropy if max_entropy > 0 else 0.0
                for i in range(values.shape[0])
            ]
            return float(np.mean(entropies))
        if max_entropy <= 0:
            return 0.0
        # Whole-matrix row entropies; zero terms contribute exactly 0.0, so
        # the fast path matches the retained per-row oracle to float
        # reassociation (asserted at tight tolerance in the tests).
        totals = values.sum(axis=1)
        safe_totals = np.where(totals > 0, totals, 1.0)
        p = values / safe_totals[:, None]
        positive = p > 0
        terms = np.where(positive, p * np.log2(np.where(positive, p, 1.0)), 0.0)
        entropies = np.where(totals > 0, -terms.sum(axis=1), 0.0)
        return float(np.mean(entropies / max_entropy))


class ConfidenceVariancePredictor(MatchingPredictor):
    """Variance of the non-zero confidences (variability of the matcher)."""

    name = "conf_var"
    orientation = "recall"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        nonzero = values[values > 0]
        if nonzero.size == 0:
            return 0.0
        return float(nonzero.var())


class DiversityPredictor(MatchingPredictor):
    """Number of distinct confidence levels used, normalised by selections.

    Matchers that use a rich confidence scale expose more of their internal
    uncertainty than matchers that answer everything with 1.0.
    """

    name = "diversity"
    orientation = "recall"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        nonzero = values[values > 0]
        if nonzero.size == 0:
            return 0.0
        distinct = np.unique(np.round(nonzero, 3)).size
        return distinct / nonzero.size
