"""Matrix-norm predictors: uncertainty / error-mass quantification.

Matrix norms quantify the amount of mass (and thus potential error) in a
matching matrix; the LRSM work uses them as recall-oriented features since
uncertainty and variability were shown to correlate with recall and
negatively correlate with precision (Section III-A, Thoroughness features).
All norms are normalised by the matrix size so schemata of different sizes
remain comparable.
"""

from __future__ import annotations

import numpy as np

from repro.matching.matrix import MatchingMatrix
from repro.predictors.base import MatchingPredictor


class FrobeniusNormPredictor(MatchingPredictor):
    """Frobenius norm of the confidence matrix, normalised by sqrt(size)."""

    name = "norm_fro"
    orientation = "recall"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        if values.size == 0:
            return 0.0
        return float(np.linalg.norm(values, ord="fro") / np.sqrt(values.size))


class LInfinityNormPredictor(MatchingPredictor):
    """Maximum absolute row sum, normalised by the number of columns (``normsinf``)."""

    name = "normsinf"
    orientation = "recall"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        if values.size == 0:
            return 0.0
        return float(np.abs(values).sum(axis=1).max() / values.shape[1])


class L1NormPredictor(MatchingPredictor):
    """Maximum absolute column sum, normalised by the number of rows."""

    name = "norms1"
    orientation = "recall"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        if values.size == 0:
            return 0.0
        return float(np.abs(values).sum(axis=0).max() / values.shape[0])


class SpectralNormPredictor(MatchingPredictor):
    """Largest singular value, normalised by sqrt(min dimension)."""

    name = "norms2"
    orientation = "recall"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        if values.size == 0 or min(values.shape) == 0:
            return 0.0
        singular_values = np.linalg.svd(values, compute_uv=False)
        if singular_values.size == 0:
            return 0.0
        return float(singular_values[0] / np.sqrt(min(values.shape)))
