"""Spectral (PCA-based) predictors: pca1 and pca2 of Table IV.

The fraction of variance captured by the leading principal components of
the confidence matrix summarises how low-rank (structured) the matcher's
output is.  A nearly rank-one matrix signals a consistent matching pattern;
spread-out spectra signal diversity and uncertainty.
"""

from __future__ import annotations

import numpy as np

from repro.matching.matrix import MatchingMatrix
from repro.predictors.base import MatchingPredictor


class PCAPredictor(MatchingPredictor):
    """Fraction of spectral energy captured by the ``component``-th singular value."""

    orientation = "precision"

    def __init__(self, component: int = 1) -> None:
        if component < 1:
            raise ValueError("component index must be >= 1")
        self.component = component
        self.name = f"pca{component}"

    def __call__(self, matrix: MatchingMatrix) -> float:
        values = matrix.values
        if values.size == 0 or min(values.shape) == 0:
            return 0.0
        singular_values = np.linalg.svd(values, compute_uv=False)
        energy = (singular_values**2).sum()
        if energy <= 0:
            return 0.0
        if self.component > singular_values.size:
            return 0.0
        return float(singular_values[self.component - 1] ** 2 / energy)
