"""Fast-vs-oracle kernel selection for the vectorized hot paths.

Several inner kernels keep two implementations around:

* a **fast** NumPy-vectorized path (im2col convolution, fused-gate LSTM
  stepping, bincount heat maps, masked structural predictors), and
* the original **oracle** scalar loop, retained as the reference the fast
  path is asserted against (mirroring the ``split_search="scalar"`` and
  ``resample="loop"`` precedents of earlier PRs).

The active implementation is chosen through the ``REPRO_KERNELS``
environment variable (``fast`` — the default — or ``oracle``).  Using the
environment rather than module state means the choice survives into
:class:`~repro.runtime.TaskRunner` process workers, so equivalence can be
asserted on every backend.  :func:`use_kernels` scopes a temporary switch::

    with use_kernels("oracle"):
        reference = layer.forward(batch)
    fast = layer.forward(batch)
    np.testing.assert_array_equal(fast, reference)
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment variable selecting the kernel implementation set.
KERNELS_ENV_VAR = "REPRO_KERNELS"

#: Recognised implementation sets.
KERNEL_IMPLS: tuple[str, ...] = ("fast", "oracle")


def active_kernels() -> str:
    """The active kernel implementation set (``"fast"`` unless overridden)."""
    value = os.environ.get(KERNELS_ENV_VAR, "fast") or "fast"
    if value not in KERNEL_IMPLS:
        raise ValueError(
            f"{KERNELS_ENV_VAR}={value!r} is not a known kernel set {KERNEL_IMPLS}"
        )
    return value


def oracle_active() -> bool:
    """Whether the retained scalar-loop oracles are the active kernels."""
    return active_kernels() == "oracle"


@contextmanager
def use_kernels(impl: str) -> Iterator[None]:
    """Temporarily select a kernel implementation set (process-worker safe).

    The switch is written to ``os.environ`` so TaskRunner process workers
    created inside the block inherit it.
    """
    if impl not in KERNEL_IMPLS:
        raise ValueError(f"unknown kernel set {impl!r}; choose from {KERNEL_IMPLS}")
    previous = os.environ.get(KERNELS_ENV_VAR)
    os.environ[KERNELS_ENV_VAR] = impl
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(KERNELS_ENV_VAR, None)
        else:
            os.environ[KERNELS_ENV_VAR] = previous
