"""Behavioral-data simulator: the stand-in for the paper's human study.

The paper's dataset (140 students, 7716 decisions, Ghost-Mouse traces on the
Ontobuilder interface) is not publicly available, so this package generates
a synthetic population of human matchers whose behaviour is governed by
latent traits -- skill, coverage drive, confidence bias, metacognitive
sensitivity, pace, and screen-exploration style.  Those traits drive both
the labels (precision / thoroughness / correlation / calibration measured on
the produced decision histories) and the observable behaviour (decision
sequences and mouse traces), so the learning problem has the same structure
as the paper's.

Public surface:

* :mod:`repro.simulation.schemas` -- synthetic PO and OAEI matching tasks.
* :mod:`repro.simulation.archetypes` -- matcher archetypes A-D and trait sampling.
* :mod:`repro.simulation.decisions` -- decision-history generation.
* :mod:`repro.simulation.mouse_sim` -- mouse-trace generation.
* :mod:`repro.simulation.population` -- cohorts of matchers.
* :mod:`repro.simulation.dataset` -- the full experimental dataset (PO + OAEI cohorts).
* :mod:`repro.simulation.hostile` -- adversarial cohorts (bots, fatigue drift,
  copy-paste experts, session hijacks, event storms).
* :mod:`repro.simulation.corruption` -- seeded damage for adapter trace files.
"""

from repro.simulation.schemas import build_po_task, build_oaei_task, build_small_task
from repro.simulation.archetypes import (
    Archetype,
    BehavioralTraits,
    ARCHETYPE_LIBRARY,
    sample_traits,
)
from repro.simulation.decisions import simulate_history
from repro.simulation.mouse_sim import simulate_movement
from repro.simulation.population import simulate_matcher, simulate_population
from repro.simulation.dataset import HumanMatchingDataset, build_dataset
from repro.simulation.hostile import (
    HOSTILE_COHORTS,
    simulate_hostile_matcher,
    simulate_hostile_population,
    storm_columns,
)
from repro.simulation.corruption import (
    CorruptionReport,
    Damage,
    write_corrupted_trace,
)

__all__ = [
    "build_po_task",
    "build_oaei_task",
    "build_small_task",
    "Archetype",
    "BehavioralTraits",
    "ARCHETYPE_LIBRARY",
    "sample_traits",
    "simulate_history",
    "simulate_movement",
    "simulate_matcher",
    "simulate_population",
    "HumanMatchingDataset",
    "build_dataset",
    "HOSTILE_COHORTS",
    "simulate_hostile_matcher",
    "simulate_hostile_population",
    "storm_columns",
    "CorruptionReport",
    "Damage",
    "write_corrupted_trace",
]
