"""Hostile persona cohorts: adversarial matchers for chaos testing.

The clean cohorts in :mod:`repro.simulation.population` model the
paper's honest participants.  Real deployments also see traffic no
study would admit: scripted bots with machine-regular dwell times,
humans whose pace and confidence decay mid-session, experts pasting the
same block of decisions over and over, sessions hijacked mid-stream by
a different operator, and transports that redeliver or reorder whole
event storms.  Each cohort here is a deterministic generator of such a
matcher — *valid* by the strict ingest rules (the point is that the
pipeline must score them, not crash on them), with
:func:`storm_columns` additionally producing the invalid event storms
(duplicates, stale rows, malformed rows) the screened ingest path must
divert with exact counts.

All generators are pure functions of their RNG, so chaos suites can
assert bitwise-identical scores across runs and across fleet/oracle
targets.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.matching import events as _events
from repro.matching.correspondence import ReferenceMatch
from repro.matching.events import EventArray, N_EVENT_TYPES
from repro.matching.history import Decision, DecisionHistory
from repro.matching.matcher import HumanMatcher
from repro.matching.mouse import MovementMap
from repro.matching.schema import SchemaPair
from repro.simulation.archetypes import Archetype, sample_traits
from repro.simulation.decisions import simulate_history
from repro.simulation.mouse_sim import simulate_movement

#: The hostile cohort labels, in cycling order.
HOSTILE_COHORTS = ("bot", "fatigue", "copy_paste", "hijack", "storm")


def _movement_from_columns(x, y, codes, t, screen) -> MovementMap:
    return MovementMap(
        screen=screen,
        data=EventArray(
            np.asarray(x, dtype=np.float64),
            np.asarray(y, dtype=np.float64),
            np.asarray(codes, dtype=np.int64),
            np.asarray(t, dtype=np.float64),
        ),
    )


def _bot(pair, reference, rng, screen) -> tuple[DecisionHistory, MovementMap]:
    """A scripted bot: raster decisions at a machine-constant cadence.

    Uniform dwell (identical inter-decision interval), identical
    confidence on every decision, and a raster-scan mouse with a
    constant inter-event dt — the statistical opposite of every human
    trait the characterizer was trained on.
    """
    rows, cols = pair.shape
    interval = float(rng.uniform(1.5, 3.0))
    confidence = float(rng.uniform(0.6, 0.9))
    n_decisions = min(rows * cols, 24)
    decisions = [
        Decision(
            row=(index // cols) % rows,
            col=index % cols,
            confidence=confidence,
            timestamp=(index + 1) * interval,
        )
        for index in range(n_decisions)
    ]
    horizon = n_decisions * interval
    n_events = max(8 * n_decisions, 16)
    dt = horizon / n_events
    t = dt * np.arange(1, n_events + 1)
    height, width = screen
    x = np.tile(np.linspace(0.0, width - 1, 16), n_events // 16 + 1)[:n_events]
    y = np.repeat(
        np.linspace(0.0, height - 1, n_events // 16 + 1), 16
    )[:n_events]
    codes = np.zeros(n_events, dtype=np.int64)
    codes[7::8] = 1  # one metronomic click per dwell
    history = DecisionHistory(decisions, shape=pair.shape, pair=pair)
    return history, _movement_from_columns(x, y, codes, t, screen)


def _fatigue(pair, reference, rng, screen) -> tuple[DecisionHistory, MovementMap]:
    """A capable matcher whose pace stretches and confidence sags.

    Starts as archetype A, then drifts: each successive inter-decision
    interval is stretched by a growing factor and each confidence
    decays toward the floor — the long-session fatigue signature.
    """
    traits = sample_traits(rng, archetype=Archetype.A)
    history = simulate_history(pair, reference, traits, rng=rng)
    decisions = history.decisions
    drift = float(rng.uniform(0.6, 1.2))
    stretched: list[Decision] = []
    previous_raw = 0.0
    previous_new = 0.0
    for index, decision in enumerate(decisions):
        progress = index / max(len(decisions) - 1, 1)
        gap = decision.timestamp - previous_raw
        previous_new = previous_new + gap * (1.0 + drift * progress)
        previous_raw = decision.timestamp
        confidence = max(0.05, decision.confidence * (1.0 - 0.6 * progress))
        stretched.append(
            Decision(
                row=decision.row,
                col=decision.col,
                confidence=confidence,
                timestamp=previous_new,
            )
        )
    fatigued = DecisionHistory(stretched, shape=pair.shape, pair=pair)
    movement = simulate_movement(fatigued, traits, screen=screen, rng=rng)
    return fatigued, movement


def _copy_paste(pair, reference, rng, screen) -> tuple[DecisionHistory, MovementMap]:
    """An "expert" pasting one decision block repeatedly.

    A short block of pairs with fixed confidences is replayed verbatim
    at successive time offsets — identical payloads, only the clock
    moves — over near-zero mouse activity.
    """
    rows, cols = pair.shape
    block_size = int(rng.integers(3, 6))
    repeats = int(rng.integers(3, 6))
    block = [
        (int(rng.integers(0, rows)), int(rng.integers(0, cols)),
         float(np.round(rng.uniform(0.5, 0.95), 3)))
        for _ in range(block_size)
    ]
    step = float(rng.uniform(0.8, 1.6))
    decisions = []
    clock = 0.0
    for _ in range(repeats):
        for row, col, confidence in block:
            clock += step
            decisions.append(
                Decision(row=row, col=col, confidence=confidence, timestamp=clock)
            )
        clock += step * 4  # the pause while the block is re-copied
    history = DecisionHistory(decisions, shape=pair.shape, pair=pair)
    height, width = screen
    n_events = 8
    t = np.linspace(clock / n_events, clock, n_events)
    x = np.full(n_events, width / 2.0)
    y = np.full(n_events, height / 2.0)
    codes = np.zeros(n_events, dtype=np.int64)
    codes[-1] = 1
    return history, _movement_from_columns(x, y, codes, t, screen)


def _hijack(pair, reference, rng, screen) -> tuple[DecisionHistory, MovementMap]:
    """A session that changes hands mid-stream.

    The first half is an archetype-A matcher, the second an archetype-D
    one whose entire behaviour is time-shifted to start where the first
    stopped — one session id, two behavioural signatures.
    """
    first_traits = sample_traits(rng, archetype=Archetype.A)
    second_traits = sample_traits(rng, archetype=Archetype.D)
    first = simulate_history(pair, reference, first_traits, rng=rng)
    second = simulate_history(pair, reference, second_traits, rng=rng)
    first_movement = simulate_movement(first, first_traits, screen=screen, rng=rng)
    second_movement = simulate_movement(second, second_traits, screen=screen, rng=rng)
    offset = first.decisions[-1].timestamp + float(rng.uniform(2.0, 6.0))
    shifted = [
        Decision(
            row=d.row, col=d.col, confidence=d.confidence,
            timestamp=d.timestamp + offset,
        )
        for d in second.decisions
    ]
    history = DecisionHistory(
        list(first.decisions) + shifted, shape=pair.shape, pair=pair
    )
    second_data = second_movement.data
    shifted_events = EventArray(
        second_data.x, second_data.y, second_data.codes, second_data.t + offset,
        assume_sorted=True, validate=False,
    )
    movement = MovementMap(
        screen=screen,
        data=_events.concatenate([first_movement.data, shifted_events]),
    )
    return history, movement


def _storm(pair, reference, rng, screen) -> tuple[DecisionHistory, MovementMap]:
    """A bursty-but-valid matcher: long silences, then dense event bursts.

    The strict-ingest-safe half of the storm cohort; the invalid half
    (duplicates, stale rows, malformed rows) is produced separately by
    :func:`storm_columns` so tests can point it at the screened path
    with exact expected counts.
    """
    traits = sample_traits(rng, archetype=Archetype.B)
    history = simulate_history(pair, reference, traits, rng=rng)
    movement = simulate_movement(history, traits, screen=screen, rng=rng)
    data = movement.data
    horizon = history.decisions[-1].timestamp
    n_burst = 48
    burst_starts = np.sort(rng.uniform(0.0, horizon, 3))
    height, width = screen
    burst_t = np.concatenate(
        [start + np.round(rng.uniform(0.0, 0.25, n_burst), 6) for start in burst_starts]
    )
    burst_x = rng.uniform(0.0, width - 1, burst_t.size)
    burst_y = rng.uniform(0.0, height - 1, burst_t.size)
    burst_codes = rng.integers(0, N_EVENT_TYPES, burst_t.size)
    bursts = EventArray(burst_x, burst_y, burst_codes, burst_t)
    return history, MovementMap(
        screen=screen, data=_events.concatenate([data, bursts])
    )


_GENERATORS = {
    "bot": _bot,
    "fatigue": _fatigue,
    "copy_paste": _copy_paste,
    "hijack": _hijack,
    "storm": _storm,
}


def simulate_hostile_matcher(
    cohort: str,
    pair: SchemaPair,
    reference: ReferenceMatch,
    *,
    matcher_id: str = "hostile-000",
    random_state: Optional[int] = None,
    screen: tuple[int, int] = MovementMap.DEFAULT_SCREEN,
) -> HumanMatcher:
    """Simulate one adversarial matcher from a hostile cohort."""
    if cohort not in _GENERATORS:
        raise ValueError(
            f"unknown hostile cohort {cohort!r}; expected one of {HOSTILE_COHORTS}"
        )
    rng = np.random.default_rng(random_state)
    history, movement = _GENERATORS[cohort](pair, reference, rng, screen)
    return HumanMatcher(
        matcher_id=matcher_id,
        history=history,
        movement=movement,
        task=pair,
        reference=reference,
    )


def simulate_hostile_population(
    pair: SchemaPair,
    reference: ReferenceMatch,
    n_matchers: int,
    *,
    cohorts: Sequence[str] = HOSTILE_COHORTS,
    random_state: int = 0,
    id_prefix: str = "hostile",
    screen: tuple[int, int] = MovementMap.DEFAULT_SCREEN,
) -> list[HumanMatcher]:
    """A cohort-cycling population of adversarial matchers.

    Matcher ids embed the cohort (``hostile-bot-000``) so chaos suites
    can report scores-over-time per cohort without a side table.
    """
    if n_matchers < 1:
        raise ValueError("n_matchers must be at least 1")
    rng = np.random.default_rng(random_state)
    matchers = []
    for index in range(n_matchers):
        cohort = cohorts[index % len(cohorts)]
        seed = int(rng.integers(0, 2**31 - 1))
        matchers.append(
            simulate_hostile_matcher(
                cohort,
                pair,
                reference,
                matcher_id=f"{id_prefix}-{cohort}-{index:03d}",
                random_state=seed,
                screen=screen,
            )
        )
    return matchers


def storm_columns(
    rng: np.random.Generator,
    *,
    n_clean: int = 32,
    start: float = 0.0,
    end: float = 10.0,
    watermark: float = 0.0,
    n_duplicate: int = 0,
    n_stale: int = 0,
    n_malformed: int = 0,
    screen: tuple[int, int] = MovementMap.DEFAULT_SCREEN,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, dict[str, int]]:
    """A duplicate/out-of-window event storm with exact expected counts.

    ``n_clean`` valid events in ``(start, end]`` followed by the attack
    tail: ``n_duplicate`` exact copies of clean rows, ``n_stale`` rows
    strictly below ``watermark`` (quarantined ``out_of_window`` once the
    target buffer's watermark has passed it; requires
    ``watermark > 0``), and ``n_malformed`` rows with NaN timestamps or
    out-of-range codes.  The dirty tail never precedes a clean row, so
    the screened path's decisions for the clean rows are unaffected.

    Returns ``(x, y, codes, t, expected)`` where ``expected`` maps
    quarantine reasons to exact counts for the whole batch.
    """
    if n_stale and not watermark > 0.0:
        raise ValueError("stale rows need a positive watermark to be stale against")
    height, width = screen
    t = np.sort(rng.uniform(start, end, n_clean))
    x = np.round(rng.uniform(0.0, width - 1, n_clean), 3)
    y = np.round(rng.uniform(0.0, height - 1, n_clean), 3)
    codes = rng.integers(0, N_EVENT_TYPES, n_clean)
    extra_x, extra_y, extra_codes, extra_t = [], [], [], []
    for _ in range(int(n_duplicate)):
        index = int(rng.integers(0, n_clean))
        extra_x.append(float(x[index]))
        extra_y.append(float(y[index]))
        extra_codes.append(int(codes[index]))
        extra_t.append(float(t[index]))
    for _ in range(int(n_stale)):
        extra_x.append(float(np.round(rng.uniform(0.0, width - 1), 3)))
        extra_y.append(float(np.round(rng.uniform(0.0, height - 1), 3)))
        extra_codes.append(0)
        extra_t.append(float(rng.uniform(0.0, watermark * 0.9)))
    for attack in range(int(n_malformed)):
        extra_x.append(float(np.round(rng.uniform(0.0, width - 1), 3)))
        extra_y.append(float(np.round(rng.uniform(0.0, height - 1), 3)))
        if attack % 2:
            extra_codes.append(N_EVENT_TYPES + int(rng.integers(0, 3)))
            extra_t.append(float(end))
        else:
            extra_codes.append(0)
            extra_t.append(float("nan"))
    expected = {
        "duplicate": int(n_duplicate),
        "out_of_window": int(n_stale),
        "malformed": int(n_malformed),
    }
    return (
        np.concatenate([x, np.array(extra_x, dtype=np.float64)]),
        np.concatenate([y, np.array(extra_y, dtype=np.float64)]),
        np.concatenate([codes, np.array(extra_codes, dtype=np.int64)]),
        np.concatenate([t, np.array(extra_t, dtype=np.float64)]),
        expected,
    )


__all__ = [
    "HOSTILE_COHORTS",
    "simulate_hostile_matcher",
    "simulate_hostile_population",
    "storm_columns",
]
