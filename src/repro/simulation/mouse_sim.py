"""Mouse-trace simulation tied to the decision history and the matching UI layout.

The Ontobuilder-style interface (Section IV-A) has four main regions:

* the candidate schema tree (top left),
* the target schema tree (top right),
* a properties box with element metadata (middle),
* the match table / matching matrix (bottom).

A matcher's ``exploration`` trait controls how much of the screen is visited
(Matcher B famously skips the top-left metadata region); ``scroll_tendency``
controls the fraction of scroll events (the paper's ablation singles out
scrolling as an uncertainty signal).  Events are generated around each
decision's timestamp so that decision pacing and mouse pacing agree.

Engines
-------
``columnar`` (the default, dataset version 2)
    Pre-draws **all** randomness in a fixed block order (event counts,
    per-event time fractions, region picks, positional jitter, event-type
    rolls), then assembles the whole trace with vectorized NumPy and hands
    the columns straight to :meth:`MovementMap.from_arrays` — no per-event
    Python, no ``MouseEvent`` objects.
``reference``
    A retained scalar consumer of the **same pre-drawn blocks**: it walks
    the events one at a time exactly as the columnar assembly defines them.
    Given the same generator it is bitwise-identical to ``columnar`` (the
    pre-drawn-randomness convention of the parallel runtime), making it the
    equivalence oracle for the vectorized engine.
``legacy``
    The original event-by-event generator (dataset version 1), which
    interleaves its draws per event.  Its stream order cannot be reproduced
    by block pre-drawing, so datasets generated before the columnar engine
    need ``engine="legacy"`` (or ``REPRO_SIM_ENGINE=legacy``) to be
    regenerated bit-for-bit; see EXPERIMENTS.md for the version bump.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.matching.events import EVENT_CODES
from repro.matching.history import DecisionHistory
from repro.matching.mouse import MouseEvent, MouseEventType, MovementMap
from repro.simulation.archetypes import BehavioralTraits

#: Environment variable selecting the default trace engine.
SIM_ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"

#: Known engines (see the module docstring).
SIM_ENGINES: tuple[str, ...] = ("columnar", "reference", "legacy")

#: Version of the simulated mouse-trace datasets produced by the default
#: engine.  Bumped from 1 -> 2 with the columnar generator (new randomness
#: stream order); ``engine="legacy"`` still produces version-1 traces.
MOUSE_TRACE_VERSION = 2

#: Screen regions as (x_center, y_center) fractions of (width, height).
SCREEN_REGIONS: dict[str, tuple[float, float]] = {
    "source_tree": (0.2, 0.22),
    "target_tree": (0.78, 0.22),
    "properties_box": (0.5, 0.52),
    "match_table": (0.5, 0.82),
}

_MOVE = EVENT_CODES[MouseEventType.MOVE.value]
_LEFT = EVENT_CODES[MouseEventType.LEFT_CLICK.value]
_RIGHT = EVENT_CODES[MouseEventType.RIGHT_CLICK.value]
_SCROLL = EVENT_CODES[MouseEventType.SCROLL.value]


def _region_centers(screen: tuple[int, int]) -> dict[str, tuple[float, float]]:
    rows, cols = screen
    return {
        name: (fraction_x * cols, fraction_y * rows)
        for name, (fraction_x, fraction_y) in SCREEN_REGIONS.items()
    }


def _visited_regions(traits: BehavioralTraits, rng: np.random.Generator) -> list[str]:
    """Which regions the matcher habitually visits, by exploration level."""
    ordered = ["match_table", "target_tree", "source_tree", "properties_box"]
    n_regions = 1 + int(round(traits.exploration * (len(ordered) - 1)))
    n_regions = int(np.clip(n_regions, 1, len(ordered)))
    regions = ordered[:n_regions]
    rng.shuffle(regions)
    return regions


def _decision_windows(history: DecisionHistory) -> tuple[np.ndarray, np.ndarray]:
    """Per-decision wander windows ``[start_d, end_d]``.

    ``end_d`` is the decision's timestamp; the next window starts shortly
    after it (1% of the window's duration, at least 5 ms).  Deterministic
    given the history — no randomness is consumed.
    """
    ends = history.timestamps()
    starts = np.zeros_like(ends)
    previous_time = 0.0
    for index, end in enumerate(ends):
        starts[index] = previous_time
        duration = max(end - previous_time, 0.5)
        previous_time = end + 0.01 * duration
    return starts, ends


def _predraw(
    history: DecisionHistory,
    regions: list[str],
    events_per_decision: int,
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Draw every decision's randomness up front, in a fixed block order.

    The blocks (event counts, time fractions, region picks, x/y jitter,
    event-type rolls) are the entire randomness of the trace; both the
    vectorized assembly and the scalar reference consume them identically,
    which is what makes the two engines bitwise-equal.
    """
    n_decisions = len(history)
    n_events = np.maximum(3, rng.poisson(events_per_decision, size=n_decisions))
    total = int(n_events.sum())
    return {
        "n_events": n_events,
        "time_fractions": rng.random(total),
        "region_picks": rng.integers(0, len(regions), size=total),
        "dx": rng.normal(0.0, 1.0, size=total),
        "dy": rng.normal(0.0, 1.0, size=total),
        "rolls": rng.random(total),
    }


def simulate_movement(
    history: DecisionHistory,
    traits: BehavioralTraits,
    screen: tuple[int, int] = MovementMap.DEFAULT_SCREEN,
    events_per_decision: int = 9,
    rng: Optional[np.random.Generator] = None,
    engine: Optional[str] = None,
) -> MovementMap:
    """Simulate the mouse trace accompanying a decision history.

    Args
    ----
    engine:
        ``"columnar"`` (vectorized, the default), ``"reference"`` (scalar
        consumer of the same pre-drawn randomness — the columnar engine's
        bitwise oracle) or ``"legacy"`` (the original event-by-event
        generator).  ``None`` defers to ``REPRO_SIM_ENGINE``, then
        ``columnar``.
    """
    if engine is None:
        engine = os.environ.get(SIM_ENGINE_ENV_VAR) or "columnar"
    if engine not in SIM_ENGINES:
        raise ValueError(f"unknown mouse-sim engine {engine!r}; choose from {SIM_ENGINES}")
    if engine == "legacy":
        return _simulate_movement_legacy(history, traits, screen, events_per_decision, rng)

    rng = rng or np.random.default_rng()
    traits = traits.clipped()
    if history.is_empty:
        return MovementMap((), screen=screen)

    centers = _region_centers(screen)
    regions = _visited_regions(traits, rng)
    draws = _predraw(history, regions, events_per_decision, rng)
    starts, ends = _decision_windows(history)

    if engine == "reference":
        return _assemble_reference(
            draws, starts, ends, regions, centers, traits, screen
        )
    return _assemble_columnar(draws, starts, ends, regions, centers, traits, screen)


def _assemble_columnar(
    draws: dict[str, np.ndarray],
    starts: np.ndarray,
    ends: np.ndarray,
    regions: list[str],
    centers: dict[str, tuple[float, float]],
    traits: BehavioralTraits,
    screen: tuple[int, int],
) -> MovementMap:
    """Vectorized trace assembly from the pre-drawn randomness blocks."""
    rows, cols = screen
    spread_x = cols * 0.08
    spread_y = rows * 0.07
    n_events = draws["n_events"]
    n_decisions = n_events.size
    total = int(n_events.sum())
    decision_idx = np.repeat(np.arange(n_decisions), n_events)
    offsets = np.concatenate(([0], np.cumsum(n_events)))

    # Timestamps: scale each decision's uniform fractions into its window,
    # then sort within the decision (the flat layout keeps decisions
    # contiguous, so a stable two-key sort does every decision at once).
    span = ends - starts
    timestamps = starts[decision_idx] + span[decision_idx] * draws["time_fractions"]
    order = np.lexsort((timestamps, decision_idx))
    timestamps = timestamps[order]

    # Attributes bind to the post-sort event position: the last event of
    # every decision window is the committing left click at the match
    # table, the others wander between the habitual regions.
    is_last = np.zeros(total, dtype=bool)
    is_last[offsets[1:] - 1] = True

    region_cx = np.array([centers[name][0] for name in regions])
    region_cy = np.array([centers[name][1] for name in regions])
    center_x = region_cx[draws["region_picks"]]
    center_y = region_cy[draws["region_picks"]]
    center_x[is_last] = centers["match_table"][0]
    center_y[is_last] = centers["match_table"][1]

    x = np.clip(center_x + spread_x * draws["dx"], 0, cols - 1)
    y = np.clip(center_y + spread_y * draws["dy"], 0, rows - 1)

    rolls = draws["rolls"]
    scroll_cut = traits.scroll_tendency * 0.3
    codes = np.full(total, _MOVE, dtype=np.int64)
    codes[rolls < scroll_cut + 0.03] = _RIGHT
    codes[rolls < scroll_cut] = _SCROLL
    codes[is_last] = _LEFT

    return MovementMap.from_arrays(x, y, codes, timestamps, screen=screen, validate=False)


def _assemble_reference(
    draws: dict[str, np.ndarray],
    starts: np.ndarray,
    ends: np.ndarray,
    regions: list[str],
    centers: dict[str, tuple[float, float]],
    traits: BehavioralTraits,
    screen: tuple[int, int],
) -> MovementMap:
    """Scalar consumer of the pre-drawn blocks (the columnar oracle)."""
    rows, cols = screen
    spread_x = cols * 0.08
    spread_y = rows * 0.07
    scroll_cut = traits.scroll_tendency * 0.3
    events: list[MouseEvent] = []
    position = 0
    for index, count in enumerate(draws["n_events"].tolist()):
        start, end = starts[index], ends[index]
        fractions = draws["time_fractions"][position : position + count]
        times = np.sort(start + (end - start) * fractions)
        for event_index in range(count):
            flat = position + event_index
            if event_index == count - 1:
                region_center = centers["match_table"]
            else:
                region_center = centers[regions[int(draws["region_picks"][flat])]]
            x = float(np.clip(region_center[0] + spread_x * draws["dx"][flat], 0, cols - 1))
            y = float(np.clip(region_center[1] + spread_y * draws["dy"][flat], 0, rows - 1))
            roll = draws["rolls"][flat]
            if event_index == count - 1:
                event_type = MouseEventType.LEFT_CLICK
            elif roll < scroll_cut:
                event_type = MouseEventType.SCROLL
            elif roll < scroll_cut + 0.03:
                event_type = MouseEventType.RIGHT_CLICK
            else:
                event_type = MouseEventType.MOVE
            events.append(
                MouseEvent(x=x, y=y, event_type=event_type, timestamp=float(times[event_index]))
            )
        position += count
    return MovementMap(events, screen=screen)


def _simulate_movement_legacy(
    history: DecisionHistory,
    traits: BehavioralTraits,
    screen: tuple[int, int] = MovementMap.DEFAULT_SCREEN,
    events_per_decision: int = 9,
    rng: Optional[np.random.Generator] = None,
) -> MovementMap:
    """The original event-by-event generator (dataset version 1)."""
    rng = rng or np.random.default_rng()
    traits = traits.clipped()
    rows, cols = screen
    centers = _region_centers(screen)
    regions = _visited_regions(traits, rng)

    events: list[MouseEvent] = []
    if history.is_empty:
        return MovementMap(events, screen=screen)

    spread_x = cols * 0.08
    spread_y = rows * 0.07
    previous_time = 0.0

    for decision in history:
        # Between the previous decision and this one the matcher wanders
        # between its habitual regions and ends at the match table to commit.
        start = previous_time
        end = decision.timestamp
        duration = max(end - start, 0.5)
        n_events = max(3, int(rng.poisson(events_per_decision)))
        times = np.sort(rng.uniform(start, end, size=n_events))

        for index, timestamp in enumerate(times):
            if index == n_events - 1:
                region = "match_table"
            else:
                region = regions[int(rng.integers(0, len(regions)))]
            center_x, center_y = centers[region]
            x = float(np.clip(center_x + rng.normal(0, spread_x), 0, cols - 1))
            y = float(np.clip(center_y + rng.normal(0, spread_y), 0, rows - 1))

            roll = rng.random()
            if index == n_events - 1:
                event_type = MouseEventType.LEFT_CLICK
            elif roll < traits.scroll_tendency * 0.3:
                event_type = MouseEventType.SCROLL
            elif roll < traits.scroll_tendency * 0.3 + 0.03:
                event_type = MouseEventType.RIGHT_CLICK
            else:
                event_type = MouseEventType.MOVE
            events.append(MouseEvent(x=x, y=y, event_type=event_type, timestamp=float(timestamp)))

        previous_time = end + 0.01 * duration

    return MovementMap(events, screen=screen)
