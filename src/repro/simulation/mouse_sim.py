"""Mouse-trace simulation tied to the decision history and the matching UI layout.

The Ontobuilder-style interface (Section IV-A) has four main regions:

* the candidate schema tree (top left),
* the target schema tree (top right),
* a properties box with element metadata (middle),
* the match table / matching matrix (bottom).

A matcher's ``exploration`` trait controls how much of the screen is visited
(Matcher B famously skips the top-left metadata region); ``scroll_tendency``
controls the fraction of scroll events (the paper's ablation singles out
scrolling as an uncertainty signal).  Events are generated around each
decision's timestamp so that decision pacing and mouse pacing agree.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.matching.history import DecisionHistory
from repro.matching.mouse import MouseEvent, MouseEventType, MovementMap
from repro.simulation.archetypes import BehavioralTraits

#: Screen regions as (x_center, y_center) fractions of (width, height).
SCREEN_REGIONS: dict[str, tuple[float, float]] = {
    "source_tree": (0.2, 0.22),
    "target_tree": (0.78, 0.22),
    "properties_box": (0.5, 0.52),
    "match_table": (0.5, 0.82),
}


def _region_centers(screen: tuple[int, int]) -> dict[str, tuple[float, float]]:
    rows, cols = screen
    return {
        name: (fraction_x * cols, fraction_y * rows)
        for name, (fraction_x, fraction_y) in SCREEN_REGIONS.items()
    }


def _visited_regions(traits: BehavioralTraits, rng: np.random.Generator) -> list[str]:
    """Which regions the matcher habitually visits, by exploration level."""
    ordered = ["match_table", "target_tree", "source_tree", "properties_box"]
    n_regions = 1 + int(round(traits.exploration * (len(ordered) - 1)))
    n_regions = int(np.clip(n_regions, 1, len(ordered)))
    regions = ordered[:n_regions]
    rng.shuffle(regions)
    return regions


def simulate_movement(
    history: DecisionHistory,
    traits: BehavioralTraits,
    screen: tuple[int, int] = MovementMap.DEFAULT_SCREEN,
    events_per_decision: int = 9,
    rng: Optional[np.random.Generator] = None,
) -> MovementMap:
    """Simulate the mouse trace accompanying a decision history."""
    rng = rng or np.random.default_rng()
    traits = traits.clipped()
    rows, cols = screen
    centers = _region_centers(screen)
    regions = _visited_regions(traits, rng)

    events: list[MouseEvent] = []
    if history.is_empty:
        return MovementMap(events, screen=screen)

    spread_x = cols * 0.08
    spread_y = rows * 0.07
    previous_time = 0.0

    for decision in history:
        # Between the previous decision and this one the matcher wanders
        # between its habitual regions and ends at the match table to commit.
        start = previous_time
        end = decision.timestamp
        duration = max(end - start, 0.5)
        n_events = max(3, int(rng.poisson(events_per_decision)))
        times = np.sort(rng.uniform(start, end, size=n_events))

        for index, timestamp in enumerate(times):
            if index == n_events - 1:
                region = "match_table"
            else:
                region = regions[int(rng.integers(0, len(regions)))]
            center_x, center_y = centers[region]
            x = float(np.clip(center_x + rng.normal(0, spread_x), 0, cols - 1))
            y = float(np.clip(center_y + rng.normal(0, spread_y), 0, rows - 1))

            roll = rng.random()
            if index == n_events - 1:
                event_type = MouseEventType.LEFT_CLICK
            elif roll < traits.scroll_tendency * 0.3:
                event_type = MouseEventType.SCROLL
            elif roll < traits.scroll_tendency * 0.3 + 0.03:
                event_type = MouseEventType.RIGHT_CLICK
            else:
                event_type = MouseEventType.MOVE
            events.append(MouseEvent(x=x, y=y, event_type=event_type, timestamp=float(timestamp)))

        previous_time = end + 0.01 * duration

    return MovementMap(events, screen=screen)
