"""Deterministic trace-file corruption for the ingestion chaos suite.

:func:`write_corrupted_trace` serialises a clean workload through a
registered adapter format and damages a seeded selection of rows on the
way out — garbage lines (``unparseable``), out-of-range field values
(``schema_invalid``), rewound timestamps (``clock_skew``), and exact
re-inserted copies (``duplicate``).  The damage is injected in the
format's own vocabulary (via the format's ``encode_*`` hooks), so a CSV
file is damaged the way CSV files break and a JSONL file the way JSON
breaks.

The returned :class:`CorruptionReport` is the test oracle: it knows the
exact per-reason quarantine counts a screened read must produce
(:meth:`CorruptionReport.expected_counts`) and the clean workload a
strict read of the survivors must equal
(:meth:`CorruptionReport.clean_traces` — the input traces minus the
rows that were *replaced* by damage; duplicated rows are insertions, so
they drop nothing).

Everything is a pure function of ``seed``: the same call produces the
same bytes, the same damage positions, and therefore the same
quarantine ledger — the property the differential invariant test pins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.adapters.base import get_format, iter_trace_records
from repro.adapters.records import SessionTrace

#: The damage kinds the writer can inject, by quarantine reason.
DAMAGE_REASONS = ("unparseable", "schema_invalid", "clock_skew", "duplicate")

#: A line no format can decode (not CSV-shaped, not JSON).
GARBAGE_LINE = "!corrupted row: \x7f\x01 not a record !"


@dataclass(frozen=True)
class Damage:
    """One injected defect: which session/row, and the expected reason."""

    session_id: str
    reason: str
    kind: str  # "event" or "decision"
    index: int  # index within that session's rows of that kind
    detail: str


@dataclass
class CorruptionReport:
    """What :func:`write_corrupted_trace` did, as a test oracle."""

    path: Path
    format_name: str
    seed: int
    damages: list[Damage]

    def expected_counts(self) -> dict[str, int]:
        """Exact per-reason quarantine counts a screened read must log."""
        counts = {reason: 0 for reason in DAMAGE_REASONS}
        for damage in self.damages:
            counts[damage.reason] += 1
        return counts

    def clean_traces(self, traces: Sequence[SessionTrace]) -> list[SessionTrace]:
        """The surviving workload: input traces minus replaced rows.

        ``duplicate`` damage inserts an extra copy (the original
        survives); every other kind replaces the original row, so the
        clean comparison workload drops it.
        """
        dropped: dict[tuple[str, str], set[int]] = {}
        for damage in self.damages:
            if damage.reason == "duplicate":
                continue
            dropped.setdefault((damage.session_id, damage.kind), set()).add(
                damage.index
            )
        survivors = []
        for trace in traces:
            event_drop = dropped.get((trace.session_id, "event"), set())
            decision_drop = dropped.get((trace.session_id, "decision"), set())
            event_keep = np.array(
                [i for i in range(trace.n_events) if i not in event_drop],
                dtype=np.int64,
            )
            decision_keep = np.array(
                [i for i in range(trace.n_decisions) if i not in decision_drop],
                dtype=np.int64,
            )
            survivors.append(
                replace(
                    trace,
                    x=trace.x[event_keep],
                    y=trace.y[event_keep],
                    codes=trace.codes[event_keep],
                    t=trace.t[event_keep],
                    d_rows=trace.d_rows[decision_keep],
                    d_cols=trace.d_cols[decision_keep],
                    d_conf=trace.d_conf[decision_keep],
                    d_t=trace.d_t[decision_keep],
                )
            )
        return survivors


def _corrupt_field(record: dict, kind: str, rng: np.random.Generator) -> tuple[dict, str]:
    """A schema-breaking copy of one record (out-of-range field value)."""
    damaged = dict(record)
    if kind == "event":
        variant = int(rng.integers(0, 3))
        if variant == 0:
            damaged["code"] = 17 + int(rng.integers(0, 5))
            return damaged, "event code out of range"
        if variant == 1:
            damaged["t"] = -float(np.round(rng.uniform(1.0, 9.0), 3))
            return damaged, "negative timestamp"
        damaged["x"] = -float(np.round(rng.uniform(1.0, 50.0), 3))
        return damaged, "negative x position"
    variant = int(rng.integers(0, 2))
    if variant == 0:
        damaged["conf"] = float(np.round(rng.uniform(1.2, 3.0), 3))
        return damaged, "confidence above 1"
    damaged["row"] = -1 - int(rng.integers(0, 4))
    return damaged, "negative pair row"


def write_corrupted_trace(
    traces: Sequence[SessionTrace],
    path: Union[str, Path],
    format_name: str = "jsonl",
    *,
    seed: int = 0,
    n_unparseable: int = 2,
    n_schema_invalid: int = 2,
    n_clock_skew: int = 1,
    n_duplicate: int = 2,
    clock_skew_tolerance: float = 1.0,
) -> CorruptionReport:
    """Write ``traces`` in ``format_name`` with seeded damage injected.

    Damage targets are drawn without replacement from the eligible rows
    (``clock_skew`` needs a predecessor of the same kind and room to
    rewind past the tolerance while staying non-negative), so the
    requested counts are exact.  Raises ``ValueError`` when the workload
    is too small to host the requested damage.
    """
    path = Path(path)
    format_cls = get_format(format_name)
    rng = np.random.default_rng(seed)

    # Flatten the workload into per-line plans, tracking each row's
    # session, kind, and index-within-kind so damage is attributable.
    rows: list[tuple[str, str, int, dict]] = []
    per_kind_counts: dict[tuple[str, str], int] = {}
    for trace in traces:
        for kind, record in iter_trace_records(trace):
            if kind == "event" and format_cls.event_schema is None:
                continue
            if kind == "decision" and format_cls.decision_schema is None:
                continue
            key = (trace.session_id, kind)
            index = per_kind_counts.get(key, 0)
            per_kind_counts[key] = index + 1
            rows.append((trace.session_id, kind, index, record))
    if not rows:
        raise ValueError("cannot corrupt an empty workload")

    # clock_skew eligibility: a same-kind predecessor exists and the
    # rewound timestamp stays non-negative even at the maximum margin
    # (2.0, matching the draw below) — a negative timestamp would land
    # in schema_invalid instead and skew the expected counters.
    def skew_eligible(position: int) -> bool:
        session_id, kind, index, record = rows[position]
        if index < 1:
            return False
        previous = next(
            row[3]["t"]
            for row in reversed(rows[:position])
            if row[0] == session_id and row[1] == kind
        )
        return previous - clock_skew_tolerance - 2.0 > 0.0

    n_damage = n_unparseable + n_schema_invalid + n_clock_skew + n_duplicate
    if n_damage > len(rows):
        raise ValueError(
            f"requested {n_damage} damaged rows but the workload has {len(rows)}"
        )
    order = rng.permutation(len(rows))
    skew_targets = [p for p in order.tolist() if skew_eligible(p)][:n_clock_skew]
    if len(skew_targets) < n_clock_skew:
        raise ValueError("not enough clock_skew-eligible rows in the workload")
    remaining = [p for p in order.tolist() if p not in set(skew_targets)]
    cursor = 0

    def take(count: int) -> list[int]:
        nonlocal cursor
        chosen = remaining[cursor : cursor + count]
        cursor += count
        if len(chosen) < count:
            raise ValueError("not enough rows left to damage")
        return chosen

    plan: dict[int, str] = {p: "clock_skew" for p in skew_targets}
    plan.update({p: "unparseable" for p in take(n_unparseable)})
    plan.update({p: "schema_invalid" for p in take(n_schema_invalid)})
    plan.update({p: "duplicate" for p in take(n_duplicate)})

    def encode(session_id: str, kind: str, record: dict) -> str:
        if kind == "event":
            return format_cls.encode_event(session_id, record)
        return format_cls.encode_decision(session_id, record)

    damages: list[Damage] = []
    lines = format_cls.header_lines(list(traces))
    running_t: dict[tuple[str, str], float] = {}
    for position, (session_id, kind, index, record) in enumerate(rows):
        reason = plan.get(position)
        if reason is None:
            lines.append(encode(session_id, kind, record))
            running_t[(session_id, kind)] = float(record["t"])
            continue
        if reason == "unparseable":
            lines.append(GARBAGE_LINE)
            damages.append(
                Damage(session_id, "unparseable", kind, index, "garbage line")
            )
        elif reason == "schema_invalid":
            damaged, detail = _corrupt_field(record, kind, rng)
            lines.append(encode(session_id, kind, damaged))
            damages.append(
                Damage(session_id, "schema_invalid", kind, index, detail)
            )
        elif reason == "clock_skew":
            previous = running_t[(session_id, kind)]
            margin = float(np.round(rng.uniform(0.5, 2.0), 3))
            rewound = dict(record)
            rewound["t"] = previous - clock_skew_tolerance - margin
            lines.append(encode(session_id, kind, rewound))
            damages.append(
                Damage(
                    session_id, "clock_skew", kind, index,
                    f"rewound {clock_skew_tolerance + margin:.3f}s",
                )
            )
        else:  # duplicate: the original row, then an exact re-send
            lines.append(encode(session_id, kind, record))
            lines.append(encode(session_id, kind, record))
            running_t[(session_id, kind)] = float(record["t"])
            damages.append(
                Damage(session_id, "duplicate", kind, index, "exact re-send")
            )
    path.write_text("\n".join(lines) + "\n")
    return CorruptionReport(
        path=path, format_name=format_name, seed=seed, damages=damages
    )


__all__ = [
    "DAMAGE_REASONS",
    "CorruptionReport",
    "Damage",
    "GARBAGE_LINE",
    "write_corrupted_trace",
]
