"""The full experimental dataset: a PO cohort and an OAEI cohort.

The paper's evaluation uses 106 human matchers on the Purchase Order task
(5-fold cross-validation) and 34 human matchers on the OAEI ontology
alignment task (generalization test).  ``build_dataset`` regenerates that
setting synthetically, with the Section IV-A preprocessing already applied.
Cohort sizes are parameters so tests and benchmarks can run reduced-scale
versions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.correspondence import ReferenceMatch
from repro.matching.matcher import HumanMatcher
from repro.matching.preprocessing import PreprocessingConfig, preprocess_matcher
from repro.matching.schema import SchemaPair
from repro.simulation.population import simulate_population
from repro.simulation.schemas import build_oaei_task, build_po_task


@dataclass
class HumanMatchingDataset:
    """The simulated counterpart of the paper's behavioural dataset."""

    po_pair: SchemaPair
    po_reference: ReferenceMatch
    po_matchers: list[HumanMatcher]
    oaei_pair: SchemaPair
    oaei_reference: ReferenceMatch
    oaei_matchers: list[HumanMatcher]

    @property
    def n_po_matchers(self) -> int:
        return len(self.po_matchers)

    @property
    def n_oaei_matchers(self) -> int:
        return len(self.oaei_matchers)

    @property
    def n_decisions(self) -> int:
        """Total decisions across both cohorts (the paper reports 7716)."""
        return sum(m.n_decisions for m in self.po_matchers) + sum(
            m.n_decisions for m in self.oaei_matchers
        )

    def summary(self) -> dict[str, float]:
        """Headline dataset statistics for logging and EXPERIMENTS.md."""
        return {
            "po_matchers": float(self.n_po_matchers),
            "oaei_matchers": float(self.n_oaei_matchers),
            "total_decisions": float(self.n_decisions),
            "po_task_shape_rows": float(self.po_pair.shape[0]),
            "po_task_shape_cols": float(self.po_pair.shape[1]),
            "oaei_task_shape_rows": float(self.oaei_pair.shape[0]),
            "oaei_task_shape_cols": float(self.oaei_pair.shape[1]),
        }


def build_dataset(
    n_po_matchers: int = 106,
    n_oaei_matchers: int = 34,
    random_state: int = 42,
    preprocess: bool = True,
    preprocessing_config: PreprocessingConfig | None = None,
) -> HumanMatchingDataset:
    """Simulate the full dataset (PO cohort + OAEI cohort).

    Parameters
    ----------
    n_po_matchers, n_oaei_matchers:
        Cohort sizes; the paper's are 106 and 34.
    random_state:
        Master seed; cohorts receive derived seeds so they are independent.
    preprocess:
        Whether to apply the Section IV-A preprocessing (warm-up removal and
        elapsed-time outlier filtering) to every matcher.
    """
    po_pair, po_reference = build_po_task(random_state=random_state)
    oaei_pair, oaei_reference = build_oaei_task(random_state=random_state + 1)

    po_matchers = simulate_population(
        po_pair,
        po_reference,
        n_matchers=n_po_matchers,
        random_state=random_state + 100,
        id_prefix="po",
    )
    oaei_matchers = simulate_population(
        oaei_pair,
        oaei_reference,
        n_matchers=n_oaei_matchers,
        random_state=random_state + 200,
        id_prefix="oaei",
    )

    if preprocess:
        config = preprocessing_config or PreprocessingConfig()
        po_matchers = [preprocess_matcher(m, config) for m in po_matchers]
        oaei_matchers = [preprocess_matcher(m, config) for m in oaei_matchers]

    return HumanMatchingDataset(
        po_pair=po_pair,
        po_reference=po_reference,
        po_matchers=po_matchers,
        oaei_pair=oaei_pair,
        oaei_reference=oaei_reference,
        oaei_matchers=oaei_matchers,
    )
