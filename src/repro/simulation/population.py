"""Cohorts of simulated human matchers."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.matching.correspondence import ReferenceMatch
from repro.matching.matcher import HumanMatcher, MatcherMetadata
from repro.matching.schema import SchemaPair
from repro.simulation.archetypes import Archetype, BehavioralTraits, sample_traits
from repro.simulation.decisions import simulate_history
from repro.simulation.mouse_sim import simulate_movement


def _metadata_for(traits: BehavioralTraits, rng: np.random.Generator) -> MatcherMetadata:
    """Self-reported metadata loosely correlated with the latent traits.

    Section IV-C reports a correlation between English level and recall and
    between psychometric score and precision; the simulator injects those
    (weak) relations and keeps resolution/calibration independent of the
    personal information, mirroring the paper's finding.
    """
    psychometric = int(np.clip(rng.normal(600 + 150 * traits.skill, 40), 400, 800))
    english = int(np.clip(round(2.5 + 2.5 * traits.coverage_drive + rng.normal(0, 0.6)), 1, 5))
    domain = int(np.clip(round(1 + rng.exponential(0.5)), 1, 5))
    return MatcherMetadata(
        gender=str(rng.choice(["female", "male", "unspecified"])),
        age=int(rng.integers(20, 30)),
        psychometric_score=psychometric,
        english_level=english,
        domain_knowledge=domain,
        db_education=bool(rng.random() < 0.9),
    )


def simulate_matcher(
    matcher_id: str,
    pair: SchemaPair,
    reference: ReferenceMatch,
    traits: Optional[BehavioralTraits] = None,
    archetype: Optional[Archetype] = None,
    random_state: Optional[int] = None,
    screen: tuple[int, int] = (768, 1024),
) -> HumanMatcher:
    """Simulate one matcher: traits -> decision history -> mouse trace."""
    rng = np.random.default_rng(random_state)
    if traits is None:
        traits = sample_traits(rng, archetype=archetype)
    history = simulate_history(pair, reference, traits, rng=rng)
    movement = simulate_movement(history, traits, screen=screen, rng=rng)
    return HumanMatcher(
        matcher_id=matcher_id,
        history=history,
        movement=movement,
        task=pair,
        reference=reference,
        metadata=_metadata_for(traits, rng),
    )


def simulate_population(
    pair: SchemaPair,
    reference: ReferenceMatch,
    n_matchers: int,
    archetypes: Optional[Sequence[Archetype]] = None,
    random_state: int = 0,
    id_prefix: str = "matcher",
    screen: tuple[int, int] = (768, 1024),
) -> list[HumanMatcher]:
    """Simulate a cohort of matchers on the same task.

    When ``archetypes`` is None, traits are sampled from the mixed population
    distribution; otherwise matchers cycle through the given archetypes.
    """
    if n_matchers < 1:
        raise ValueError("n_matchers must be at least 1")
    rng = np.random.default_rng(random_state)
    matchers = []
    for index in range(n_matchers):
        archetype = None
        if archetypes:
            archetype = archetypes[index % len(archetypes)]
        traits = sample_traits(rng, archetype=archetype)
        seed = int(rng.integers(0, 2**31 - 1))
        matchers.append(
            simulate_matcher(
                matcher_id=f"{id_prefix}-{index:03d}",
                pair=pair,
                reference=reference,
                traits=traits,
                random_state=seed,
                screen=screen,
            )
        )
    return matchers
