"""Matcher archetypes and the latent behavioral traits that drive the simulator.

The paper motivates its framework with four archetypes (Figures 1, 4, 5):

* **Matcher A** -- precise and thorough, cognitively aware (high resolution,
  near-zero calibration).
* **Matcher B** -- imprecise and incomplete, over-confident, skips parts of
  the screen.
* **Matcher C** -- precise but incomplete: covers only a fraction of the
  correct match in the available time.
* **Matcher D** -- precise and thorough but unreliable: resolution is low
  and confidence poorly tracks precision.

A :class:`BehavioralTraits` bundle holds the latent parameters; the decision
and mouse simulators read these traits, and the four measures computed on
the resulting histories recover the intended expertise profile.  Population
sampling mixes archetypes (plus trait noise) so cohort marginals land near
the paper's Figure 8/9 statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np


class Archetype(enum.Enum):
    """The archetype labels used throughout the examples and figures."""

    A = "A"  # precise and thorough
    B = "B"  # imprecise and incomplete
    C = "C"  # precise but incomplete
    D = "D"  # precise and thorough but uncalibrated / uncorrelated
    MIXED = "mixed"


@dataclass(frozen=True)
class BehavioralTraits:
    """Latent traits of a simulated human matcher.

    Attributes
    ----------
    skill:
        Probability that a decision the matcher commits to is correct.
    coverage_drive:
        Fraction of the reference correspondences the matcher will attempt
        within the session (thoroughness driver).
    distraction:
        Rate of spurious (incorrect-pair) decisions per correct attempt.
    confidence_bias:
        Added to the confidence of every decision: positive = over-confident,
        negative = under-confident (calibration driver).
    metacognition:
        How strongly confidence separates correct from incorrect decisions
        (resolution driver); 0 means confidence is uninformative.
    confidence_noise:
        Standard deviation of the confidence report noise.
    pace:
        Mean inter-decision time in seconds.
    pace_variability:
        Coefficient of variation of inter-decision times.
    revision_rate:
        Probability of revisiting an earlier decision after each new decision.
    exploration:
        How much of the screen the matcher explores (0 = tunnel vision on one
        region, 1 = visits every region including metadata panels).
    scroll_tendency:
        Relative frequency of scroll events (uncertainty proxy).
    stamina:
        Multiplier on the number of decisions the matcher makes before stopping.
    """

    skill: float = 0.6
    coverage_drive: float = 0.4
    distraction: float = 0.5
    confidence_bias: float = 0.1
    metacognition: float = 0.5
    confidence_noise: float = 0.1
    pace: float = 12.0
    pace_variability: float = 0.4
    revision_rate: float = 0.08
    exploration: float = 0.6
    scroll_tendency: float = 0.3
    stamina: float = 1.0

    def clipped(self) -> "BehavioralTraits":
        """A copy with every trait clipped to its legal range."""
        return BehavioralTraits(
            skill=float(np.clip(self.skill, 0.01, 0.99)),
            coverage_drive=float(np.clip(self.coverage_drive, 0.02, 1.0)),
            distraction=float(np.clip(self.distraction, 0.0, 3.0)),
            confidence_bias=float(np.clip(self.confidence_bias, -0.6, 0.6)),
            metacognition=float(np.clip(self.metacognition, 0.0, 1.0)),
            confidence_noise=float(np.clip(self.confidence_noise, 0.01, 0.5)),
            pace=float(np.clip(self.pace, 2.0, 60.0)),
            pace_variability=float(np.clip(self.pace_variability, 0.05, 1.5)),
            revision_rate=float(np.clip(self.revision_rate, 0.0, 0.5)),
            exploration=float(np.clip(self.exploration, 0.05, 1.0)),
            scroll_tendency=float(np.clip(self.scroll_tendency, 0.0, 1.0)),
            stamina=float(np.clip(self.stamina, 0.2, 2.5)),
        )


#: Trait presets for the four archetypes of Figures 1, 4 and 5.
ARCHETYPE_LIBRARY: dict[Archetype, BehavioralTraits] = {
    Archetype.A: BehavioralTraits(
        skill=0.88,
        coverage_drive=0.85,
        distraction=0.15,
        confidence_bias=0.0,
        metacognition=0.9,
        confidence_noise=0.05,
        pace=9.0,
        revision_rate=0.05,
        exploration=0.95,
        scroll_tendency=0.25,
        stamina=1.4,
    ),
    Archetype.B: BehavioralTraits(
        skill=0.3,
        coverage_drive=0.3,
        distraction=1.6,
        confidence_bias=0.35,
        metacognition=0.15,
        confidence_noise=0.15,
        pace=10.0,
        revision_rate=0.05,
        exploration=0.35,
        scroll_tendency=0.55,
        stamina=0.8,
    ),
    Archetype.C: BehavioralTraits(
        skill=0.88,
        coverage_drive=0.2,
        distraction=0.2,
        confidence_bias=0.02,
        metacognition=0.75,
        confidence_noise=0.06,
        pace=16.0,
        revision_rate=0.1,
        exploration=0.4,
        scroll_tendency=0.3,
        stamina=0.8,
    ),
    Archetype.D: BehavioralTraits(
        skill=0.8,
        coverage_drive=0.8,
        distraction=0.25,
        confidence_bias=-0.3,
        metacognition=0.05,
        confidence_noise=0.25,
        pace=8.0,
        revision_rate=0.15,
        exploration=0.8,
        scroll_tendency=0.4,
        stamina=1.3,
    ),
}


def sample_traits(
    rng: np.random.Generator,
    archetype: Optional[Archetype] = None,
    noise_scale: float = 1.0,
) -> BehavioralTraits:
    """Sample traits for one matcher.

    When ``archetype`` is ``None`` (the default population mode), traits are
    drawn from distributions calibrated so that the resulting cohort lands
    near the paper's Figure 8/9 marginals: slightly more than half of the
    matchers come out precise, roughly 15% thorough, a third correlated, and
    40% calibrated, with a general tendency towards over-confidence.
    When an archetype is given, its preset is perturbed with small noise.
    """
    if archetype is not None and archetype != Archetype.MIXED:
        base = ARCHETYPE_LIBRARY[archetype]
        jitter = 0.05 * noise_scale
        return replace(
            base,
            skill=base.skill + rng.normal(0, jitter),
            coverage_drive=base.coverage_drive + rng.normal(0, jitter),
            confidence_bias=base.confidence_bias + rng.normal(0, jitter),
            metacognition=base.metacognition + rng.normal(0, jitter),
            pace=base.pace * float(np.exp(rng.normal(0, 0.1 * noise_scale))),
            exploration=base.exploration + rng.normal(0, jitter),
        ).clipped()

    # Mixed population: wide, skewed trait distributions.
    skill = rng.beta(4.4, 2.4)                    # mean ~0.65, most mass 0.45-0.85
    coverage_drive = rng.beta(2.1, 3.0)           # mean ~0.41, long right tail
    distraction = rng.gamma(2.0, 0.35)            # mean ~0.7 spurious decisions per attempt
    confidence_bias = rng.normal(0.18, 0.22)      # population leans over-confident
    metacognition = rng.beta(1.6, 2.3)            # mean ~0.41
    confidence_noise = rng.uniform(0.08, 0.25)
    pace = rng.uniform(6.0, 25.0)
    pace_variability = rng.uniform(0.2, 0.8)
    revision_rate = rng.uniform(0.05, 0.3)
    exploration = rng.beta(2.5, 1.8)              # most matchers explore a fair amount
    scroll_tendency = rng.uniform(0.1, 0.7)
    stamina = rng.uniform(0.7, 2.0)
    return BehavioralTraits(
        skill=skill,
        coverage_drive=coverage_drive,
        distraction=distraction,
        confidence_bias=confidence_bias,
        metacognition=metacognition,
        confidence_noise=confidence_noise,
        pace=pace,
        pace_variability=pace_variability,
        revision_rate=revision_rate,
        exploration=exploration,
        scroll_tendency=scroll_tendency,
        stamina=stamina,
    ).clipped()
