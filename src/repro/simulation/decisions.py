"""Decision-history simulation.

Given a matching task (schema pair + reference match) and a matcher's latent
traits, produce a sequential decision history whose measured expertise
profile reflects the traits:

* ``skill`` and ``distraction`` drive precision,
* ``coverage_drive`` (and ``skill``) drive recall,
* ``metacognition`` drives resolution (confidence separates correct from
  incorrect decisions),
* ``confidence_bias`` drives calibration (over/under-confidence),
* ``pace`` / ``pace_variability`` drive the timing profile, including the
  occasional long pause that the preprocessing step filters out,
* ``revision_rate`` produces mind changes (revisited pairs).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.matching.correspondence import ReferenceMatch
from repro.matching.history import Decision, DecisionHistory
from repro.matching.schema import SchemaPair
from repro.simulation.archetypes import BehavioralTraits


def _confidence(
    correct: bool, traits: BehavioralTraits, rng: np.random.Generator
) -> float:
    """Reported confidence for a decision, shaped by metacognition and bias.

    Metacognition controls how reliably confidence tracks correctness: a
    perfectly metacognitive matcher separates correct from incorrect
    decisions, a poorly metacognitive one frequently "lapses" and reports a
    confidence unrelated to the decision's actual correctness.  This keeps
    the population's resolution (gamma) spread over the whole range instead
    of piling up at 1.0.
    """
    direction = 1.0 if correct else -1.0
    lapse_probability = (1.0 - traits.metacognition) * 0.45
    if rng.random() < lapse_probability:
        direction = 1.0 if rng.random() < 0.5 else -1.0
    center = 0.55 + traits.confidence_bias + 0.33 * traits.metacognition * direction
    value = center + rng.normal(0.0, max(traits.confidence_noise, 0.08))
    return float(np.clip(value, 0.05, 1.0))


def _next_timestamp(
    current: float, traits: BehavioralTraits, rng: np.random.Generator
) -> float:
    """Advance the clock by one inter-decision interval (log-normal, rare pauses)."""
    sigma = traits.pace_variability
    interval = traits.pace * float(np.exp(rng.normal(-0.5 * sigma**2, sigma)))
    if rng.random() < 0.03:
        # Methodical pause unrelated to the target term (filtered by preprocessing).
        interval += traits.pace * rng.uniform(5.0, 12.0)
    return current + max(interval, 0.5)


def _wrong_pair_near(
    true_pair: tuple[int, int],
    shape: tuple[int, int],
    reference: ReferenceMatch,
    rng: np.random.Generator,
) -> tuple[int, int]:
    """An incorrect pair confusable with ``true_pair`` (same row, nearby column)."""
    rows, cols = shape
    row, col = true_pair
    for _ in range(10):
        candidate_col = int(np.clip(col + rng.integers(-3, 4), 0, cols - 1))
        candidate_row = row if rng.random() < 0.7 else int(rng.integers(0, rows))
        candidate = (candidate_row, candidate_col)
        if candidate != true_pair and not reference.is_correct(*candidate):
            return candidate
    # Fallback: any non-reference pair.
    while True:
        candidate = (int(rng.integers(0, rows)), int(rng.integers(0, cols)))
        if not reference.is_correct(*candidate):
            return candidate


def _random_wrong_pair(
    shape: tuple[int, int], reference: ReferenceMatch, rng: np.random.Generator
) -> tuple[int, int]:
    """A uniformly random incorrect pair (a spurious, distracted decision)."""
    rows, cols = shape
    while True:
        candidate = (int(rng.integers(0, rows)), int(rng.integers(0, cols)))
        if not reference.is_correct(*candidate):
            return candidate


def simulate_history(
    pair: SchemaPair,
    reference: ReferenceMatch,
    traits: BehavioralTraits,
    rng: Optional[np.random.Generator] = None,
    include_warmup: bool = True,
) -> DecisionHistory:
    """Simulate a full decision history for one matcher on one task."""
    rng = rng or np.random.default_rng()
    traits = traits.clipped()
    shape = pair.shape
    positives = sorted(reference.positives)
    if not positives:
        raise ValueError("the reference match must contain at least one correspondence")

    decisions: list[Decision] = []
    clock = 0.0

    def record(pair_indices: tuple[int, int], correct: bool) -> None:
        nonlocal clock
        clock = _next_timestamp(clock, traits, rng)
        decisions.append(
            Decision(
                row=pair_indices[0],
                col=pair_indices[1],
                confidence=_confidence(correct, traits, rng),
                timestamp=clock,
            )
        )

    # Warm-up: the first three decisions are exploratory and later removed.
    # They still reflect the matcher's underlying skill (an able matcher does
    # not suddenly guess at random during warm-up).
    if include_warmup:
        for _ in range(3):
            if rng.random() < traits.skill:
                warmup_pair = positives[int(rng.integers(0, len(positives)))]
                record(warmup_pair, True)
            else:
                record(_random_wrong_pair(shape, reference, rng), False)

    # Main phase: walk through the reference concepts the matcher will attempt.
    n_attempts = int(round(traits.coverage_drive * traits.stamina * len(positives)))
    n_attempts = int(np.clip(n_attempts, 2, len(positives)))
    attempt_order = rng.permutation(len(positives))[:n_attempts]

    decided_correct: list[tuple[int, int]] = []
    for concept_index in attempt_order:
        true_pair = positives[int(concept_index)]
        if rng.random() < traits.skill:
            record(true_pair, True)
            decided_correct.append(true_pair)
        else:
            record(_wrong_pair_near(true_pair, shape, reference, rng), False)

        # Spurious decisions interleaved with the real attempts.
        n_spurious = rng.poisson(0.25 * traits.distraction)
        for _ in range(int(n_spurious)):
            record(_random_wrong_pair(shape, reference, rng), False)

        # Occasional revision of an earlier decision (a mind change).
        if decisions and rng.random() < traits.revision_rate:
            earlier = decisions[int(rng.integers(0, len(decisions)))]
            was_correct = reference.is_correct(earlier.row, earlier.col)
            record((earlier.row, earlier.col), was_correct)

    # A final sweep of low-value decisions for restless matchers.
    n_extra = rng.poisson(1.0 * traits.distraction * traits.stamina)
    for _ in range(int(n_extra)):
        record(_random_wrong_pair(shape, reference, rng), False)

    return DecisionHistory(decisions, shape=shape, pair=pair)
