"""Synthetic matching tasks mirroring the paper's two domains.

* The Purchase Order (PO) task: two schemata with 142 and 46 attributes and
  high information content (labels, data types, instance examples).
* The OAEI ontology-alignment task: two ontologies with 121 and 109 elements.

Attribute names are generated from domain vocabularies so that a name-based
algorithmic matcher produces a plausible similarity structure, and reference
matches connect semantically corresponding elements.  Pair difficulty (how
confusable an element is with incorrect candidates) emerges from shared
vocabulary, mirroring the "mix of both easy and complex matches" the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.matching.correspondence import ReferenceMatch
from repro.matching.schema import Attribute, Schema, SchemaPair

# Domain vocabularies.  Concepts shared by both sides of a task become the
# reference correspondences; the remaining attributes are side-specific noise.
_PO_CONCEPTS: tuple[tuple[str, str, str], ...] = (
    # (canonical concept, source-side name, target-side name)
    ("order number", "poCode", "orderNumber"),
    ("order date", "poDay", "orderDate"),
    ("order time", "poTime", "orderTime"),
    ("ship city", "shipCity", "city"),
    ("ship street", "shipStreet", "street"),
    ("ship zip", "shipZip", "postalCode"),
    ("bill city", "billToCity", "invoiceCity"),
    ("bill name", "billToName", "invoiceName"),
    ("contact name", "contactName", "customerContact"),
    ("contact phone", "contactPhone", "customerPhone"),
    ("contact email", "contactEmail", "customerEmail"),
    ("item code", "itemCode", "productId"),
    ("item description", "itemDescription", "productDescription"),
    ("item quantity", "itemQuantity", "quantityOrdered"),
    ("unit price", "unitPrice", "pricePerUnit"),
    ("total amount", "totalAmount", "orderTotal"),
    ("currency", "currencyCode", "currency"),
    ("tax amount", "taxAmount", "totalTax"),
    ("discount", "discountRate", "discountPercent"),
    ("payment terms", "paymentTerms", "termsOfPayment"),
    ("delivery date", "deliveryDate", "requestedDelivery"),
    ("carrier", "carrierName", "shippingCarrier"),
    ("tracking number", "trackingNumber", "shipmentTracking"),
    ("warehouse", "warehouseCode", "fulfillmentCenter"),
    ("supplier id", "supplierId", "vendorNumber"),
    ("supplier name", "supplierName", "vendorName"),
    ("buyer id", "buyerId", "purchaserCode"),
    ("buyer name", "buyerName", "purchaserName"),
    ("approval status", "approvalStatus", "orderStatus"),
    ("priority", "priorityLevel", "orderPriority"),
)

_PO_SOURCE_EXTRA: tuple[str, ...] = (
    "poRevision", "poVersion", "poAttachment", "poComments", "poCreatedBy",
    "poModifiedBy", "poModifiedDate", "departmentCode", "costCenter", "projectCode",
    "glAccount", "budgetLine", "requisitionId", "requisitionDate", "requisitionOwner",
    "shipToRegion", "shipToCountry", "shipToState", "shipMethod", "shipInstructions",
    "freightTerms", "insuranceFlag", "hazmatFlag", "customsCode", "incoterms",
    "billToStreet", "billToZip", "billToCountry", "billToPhone", "billToFax",
    "contactFax", "contactTitle", "itemUnitOfMeasure", "itemWeight", "itemVolume",
    "itemColor", "itemSize", "itemLotNumber", "itemSerialNumber", "itemWarranty",
    "lineNumber", "lineStatus", "lineTax", "lineDiscount", "lineTotal",
    "exchangeRate", "taxJurisdiction", "taxExemptFlag", "promotionCode", "rebateCode",
    "contractId", "contractExpiry", "blanketPoFlag", "releaseNumber", "receiptRequired",
    "inspectionRequired", "qualityCode", "returnPolicy", "restockingFee", "dropShipFlag",
    "backorderFlag", "substitutionAllowed", "leadTimeDays", "reorderPoint", "safetyStock",
    "minimumOrderQty", "maximumOrderQty", "packSize", "palletQty", "containerType",
    "bolNumber", "proNumber", "sealNumber", "dockDoor", "appointmentTime",
    "receivedBy", "receivedDate", "receivedQty", "damagedQty", "shortageQty",
    "overageQty", "invoiceMatchStatus", "threeWayMatchFlag", "paymentStatus", "paymentDate",
    "checkNumber", "bankAccount", "remitToAddress", "earlyPaymentDiscount", "latePenalty",
    "disputeFlag", "disputeReason", "resolutionDate", "auditFlag", "archiveDate",
    "legacySystemId", "externalReference", "ediTransactionId", "batchNumber", "loadNumber",
    "routeCode", "stopSequence", "zone", "territory", "salesRep",
    "commissionRate", "marginPercent", "listPrice", "netPrice", "surcharge",
)

_PO_TARGET_EXTRA: tuple[str, ...] = (
    "orderRevision", "orderNotes", "createdTimestamp", "updatedTimestamp", "channel",
    "storeId", "customerId", "customerSegment", "loyaltyNumber", "giftWrapFlag",
    "customerStreet", "customerZip", "customerCountry", "customerFax", "preferredLanguage",
    "shippingCost",
)

_OAEI_CONCEPTS: tuple[tuple[str, str, str], ...] = (
    ("publication", "Publication", "Reference"),
    ("article", "Article", "JournalPaper"),
    ("book", "Book", "Monograph"),
    ("conference paper", "InProceedings", "ConferencePaper"),
    ("journal", "Journal", "Periodical"),
    ("author", "author", "creator"),
    ("title", "title", "documentTitle"),
    ("year", "year", "publicationYear"),
    ("pages", "pages", "pageRange"),
    ("volume", "volume", "volumeNumber"),
    ("issue", "number", "issueNumber"),
    ("publisher", "publisher", "publishingHouse"),
    ("editor", "editor", "editedBy"),
    ("institution", "institution", "organization"),
    ("school", "school", "university"),
    ("address", "address", "location"),
    ("abstract", "abstract", "summary"),
    ("keywords", "keywords", "subjectTerms"),
    ("isbn", "isbn", "isbnCode"),
    ("issn", "issn", "issnCode"),
    ("doi", "doi", "digitalObjectId"),
    ("url", "url", "webAddress"),
    ("note", "note", "annotation"),
    ("chapter", "chapter", "bookChapter"),
    ("series", "series", "bookSeries"),
    ("edition", "edition", "editionNumber"),
    ("month", "month", "publicationMonth"),
    ("proceedings", "Proceedings", "ConferenceProceedings"),
    ("technical report", "TechReport", "TechnicalReport"),
    ("thesis", "PhdThesis", "DoctoralThesis"),
)

_OAEI_SOURCE_EXTRA: tuple[str, ...] = (
    "Booklet", "Manual", "MastersThesis", "Misc", "Unpublished",
    "crossref", "key", "annote", "howpublished", "organization",
    "type", "affiliation", "contents", "copyright", "language",
    "lccn", "location", "mrnumber", "price", "size",
    "translator", "chair", "committee", "advisor", "department",
    "citedBy", "citationCount", "hIndex", "impactFactor", "acceptanceRate",
    "reviewScore", "reviewerComments", "submissionDate", "acceptanceDate", "cameraReadyDate",
    "presentationDate", "sessionName", "trackName", "workshopName", "tutorialName",
    "posterFlag", "demoFlag", "invitedFlag", "keynoteFlag", "bestPaperFlag",
    "openAccessFlag", "licenseType", "embargoPeriod", "repositoryUrl", "preprintUrl",
    "supplementUrl", "datasetUrl", "codeUrl", "videoUrl", "slidesUrl",
    "funder", "grantNumber", "projectName", "ethicsStatement", "conflictStatement",
    "correspondingAuthor", "firstAuthor", "lastAuthor", "authorCount", "pageCount",
    "figureCount", "tableCount", "referenceCount", "wordCount", "sectionCount",
    "appendixCount", "revisionNumber", "errataFlag", "retractionFlag", "versionDate",
    "archiveIdentifier", "catalogNumber", "shelfMark", "callNumber", "barcode",
    "acquisitionDate", "circulationStatus", "dueDate", "holdCount", "renewalCount",
    "binding", "format",
)

_OAEI_TARGET_EXTRA: tuple[str, ...] = (
    "Thesis", "Report", "Standard", "Patent", "Dataset",
    "Software", "Presentation", "Lecture", "Collection", "AnthologyEntry",
    "contributor", "illustrator", "narrator", "reviewer", "translatorName",
    "publicationStatus", "peerReviewedFlag", "indexedIn", "rankingTier", "coreRank",
    "scopusId", "wosId", "pubmedId", "arxivId", "handleId",
    "accessRights", "usageLicense", "downloadCount", "viewCount", "altmetricScore",
    "fundingAcknowledgement", "dataAvailability", "codeAvailability", "materialsAvailability",
    "registrationNumber", "trialId", "protocolId", "approvalNumber", "studyType",
    "sampleSize", "methodology", "researchArea", "discipline", "subDiscipline",
    "targetAudience", "readingLevel", "mediaType", "carrierType", "contentType",
    "extent", "dimensions", "weight", "price", "availability",
    "distributor", "printRun", "reprintOf", "translationOf", "supersedes",
    "supersededBy", "relatedTo", "partOf", "hasPart", "successor",
    "predecessor", "conferenceLocation", "conferenceDate", "conferenceAcronym",
    "workshopAcronym", "journalAbbreviation", "publisherCity", "publisherCountry",
    "editorInChief",
)

#: Extra shared concepts generated programmatically so the reference matches
#: reach a realistic size (the paper's matchers average ~55 decisions, which
#: requires reference matches well beyond 30 correspondences).
_PO_GENERATED_CONCEPTS: tuple[tuple[str, str, str], ...] = tuple(
    (f"line {index} {field}", f"line{index}{field.title()}", f"item{index}{field.title()}")
    for index in range(1, 6)
    for field in ("qty", "price", "code")
)

_OAEI_GENERATED_CONCEPTS: tuple[tuple[str, str, str], ...] = tuple(
    (f"author {index} {field}", f"author{index}{field.title()}", f"creator{index}{field.title()}")
    for index in range(1, 6)
    for field in ("name", "email", "orcid")
)

_DATA_TYPES: tuple[str, ...] = ("string", "int", "float", "date", "datetime", "time", "bool")


def _make_attribute(name: str, rng: np.random.Generator, parent: Optional[str] = None) -> Attribute:
    """Create an attribute with plausible metadata."""
    data_type = str(rng.choice(_DATA_TYPES))
    description = f"{name} field"
    examples = tuple(f"{name}-{value}" for value in rng.integers(1, 99, size=2))
    return Attribute(
        name=name,
        data_type=data_type,
        description=description,
        examples=examples,
        parent=parent,
    )


def _build_task(
    name: str,
    concepts: Sequence[tuple[str, str, str]],
    source_extra: Sequence[str],
    target_extra: Sequence[str],
    source_name: str,
    target_name: str,
    source_size: int,
    target_size: int,
    random_state: int,
) -> tuple[SchemaPair, ReferenceMatch]:
    """Assemble a schema pair and its reference match from vocabularies."""
    rng = np.random.default_rng(random_state)

    n_shared = min(len(concepts), source_size, target_size)
    source_names = [concept[1] for concept in concepts[:n_shared]]
    target_names = [concept[2] for concept in concepts[:n_shared]]

    source_names += list(source_extra[: max(0, source_size - n_shared)])
    target_names += list(target_extra[: max(0, target_size - n_shared)])

    # Fill with generated names if the vocabularies run short.
    index = 0
    while len(source_names) < source_size:
        source_names.append(f"{source_name.lower()}Field{index}")
        index += 1
    index = 0
    while len(target_names) < target_size:
        target_names.append(f"{target_name.lower()}Field{index}")
        index += 1

    # Shuffle the presentation order (but remember where the shared concepts land).
    source_order = rng.permutation(len(source_names))
    target_order = rng.permutation(len(target_names))
    source_position = {int(original): int(position) for position, original in enumerate(source_order)}
    target_position = {int(original): int(position) for position, original in enumerate(target_order)}

    source_schema = Schema(
        source_name,
        [_make_attribute(source_names[original], rng) for original in source_order],
    )
    target_schema = Schema(
        target_name,
        [_make_attribute(target_names[original], rng) for original in target_order],
    )
    pair = SchemaPair(source=source_schema, target=target_schema, name=name)

    positives = [
        (source_position[concept_index], target_position[concept_index])
        for concept_index in range(n_shared)
    ]
    reference = ReferenceMatch(pair.shape, positives)
    return pair, reference


def build_po_task(random_state: int = 7) -> tuple[SchemaPair, ReferenceMatch]:
    """The Purchase Order task: 142 x 46 attributes, 30 reference correspondences."""
    return _build_task(
        name="purchase-order",
        concepts=_PO_CONCEPTS + _PO_GENERATED_CONCEPTS,
        source_extra=_PO_SOURCE_EXTRA,
        target_extra=_PO_TARGET_EXTRA,
        source_name="PO-Source",
        target_name="PO-Target",
        source_size=142,
        target_size=46,
        random_state=random_state,
    )


def build_oaei_task(random_state: int = 11) -> tuple[SchemaPair, ReferenceMatch]:
    """The OAEI ontology-alignment task: 121 x 109 elements, 30 reference correspondences."""
    return _build_task(
        name="oaei-benchmark",
        concepts=_OAEI_CONCEPTS + _OAEI_GENERATED_CONCEPTS,
        source_extra=_OAEI_SOURCE_EXTRA,
        target_extra=_OAEI_TARGET_EXTRA,
        source_name="Onto-Source",
        target_name="Onto-Target",
        source_size=121,
        target_size=109,
        random_state=random_state,
    )


def build_small_task(
    source_size: int = 12,
    target_size: int = 9,
    random_state: int = 3,
) -> tuple[SchemaPair, ReferenceMatch]:
    """A small Thalia-like warm-up task (9-12 attributes), used in tests and examples."""
    if source_size < 4 or target_size < 4:
        raise ValueError("small task sizes must be at least 4")
    return _build_task(
        name="thalia-warmup",
        concepts=_PO_CONCEPTS[:8],
        source_extra=_PO_SOURCE_EXTRA,
        target_extra=_PO_TARGET_EXTRA,
        source_name="Warmup-Source",
        target_name="Warmup-Target",
        source_size=source_size,
        target_size=target_size,
        random_state=random_state,
    )
