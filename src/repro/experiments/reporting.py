"""Plain-text table and bar-chart rendering for experiment results."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render rows of dictionaries as an aligned plain-text table."""
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    header = [str(column) for column in columns]
    body = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(columns))
    ]

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Render a mapping of label -> value as a horizontal ASCII bar chart."""
    if not values:
        return title
    maximum = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar_length = int(round(abs(value) / maximum * width))
        bar = "#" * bar_length
        lines.append(f"{label.ljust(label_width)} | {bar} {value_format.format(value)}")
    return "\n".join(lines)


def format_ascii_heatmap(grid, width: int = 32, title: str = "") -> str:
    """Render a 2-D intensity grid as ASCII art (darker character = more visits)."""
    import numpy as np

    array = np.asarray(grid, dtype=float)
    if array.size == 0:
        return title
    maximum = array.max() or 1.0
    shades = " .:-=+*#%@"
    lines = [title] if title else []
    for row in array:
        line = "".join(shades[min(int(value / maximum * (len(shades) - 1)), len(shades) - 1)] for value in row)
        lines.append(line)
    return "\n".join(lines)
