"""Population analysis: Figures 8 and 9 plus the Section IV-C correlations.

Figure 8 reports the mean of each expertise measure over the cohort (with
the positive-resolution and under-confident sub-populations called out in
the text); Figure 9 reports the proportion of experts per characteristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.expert_model import (
    EXPERT_CHARACTERISTICS,
    ExpertProfile,
    ExpertThresholds,
    characterize_population,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_bar_chart
from repro.matching.matcher import HumanMatcher
from repro.simulation.dataset import build_dataset


@dataclass
class PopulationAnalysisResult:
    """Everything Figures 8/9 and the Section IV-C commentary report."""

    mean_measures: dict[str, float]                  # Figure 8 bars
    positive_resolution_mean: float                  # commentary: positively correlated matchers
    under_confident_abs_calibration: float           # commentary: under-confident matchers
    expert_proportions: dict[str, float]             # Figure 9 bars
    full_expert_proportion: float                    # darkest shade of Figure 9
    personal_correlations: dict[str, float]          # Section IV-C
    profiles: list[ExpertProfile]
    thresholds: ExpertThresholds

    def format_figure8(self) -> str:
        return format_bar_chart(self.mean_measures, title="Figure 8: mean measure values")

    def format_figure9(self) -> str:
        return format_bar_chart(
            self.expert_proportions, title="Figure 9: proportion of experts by type"
        )


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    if x.size < 2 or x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def analyze_population(
    matchers: Sequence[HumanMatcher],
    thresholds: Optional[ExpertThresholds] = None,
) -> PopulationAnalysisResult:
    """Compute the Figure 8/9 statistics for an existing cohort."""
    profiles, fitted_thresholds = characterize_population(list(matchers), thresholds)

    precisions = np.array([p.performance.precision for p in profiles])
    recalls = np.array([p.performance.recall for p in profiles])
    resolutions = np.array([p.performance.resolution for p in profiles])
    calibrations = np.array([p.performance.calibration for p in profiles])

    mean_measures = {
        "P": float(precisions.mean()),
        "R": float(recalls.mean()),
        "|Res|": float(np.abs(resolutions).mean()),
        "|Cal|": float(np.abs(calibrations).mean()),
    }

    positive_res = resolutions[resolutions > 0]
    positive_resolution_mean = float(positive_res.mean()) if positive_res.size else 0.0
    under_confident = calibrations[calibrations < 0]
    under_confident_abs = float(np.abs(under_confident).mean()) if under_confident.size else 0.0

    label_matrix = np.vstack([p.labels.to_array() for p in profiles])
    expert_proportions = {
        characteristic: float(label_matrix[:, index].mean())
        for index, characteristic in enumerate(EXPERT_CHARACTERISTICS)
    }
    full_expert_proportion = float((label_matrix.sum(axis=1) == 4).mean())

    english = np.array([m.metadata.english_level for m in matchers], dtype=float)
    psychometric = np.array([m.metadata.psychometric_score for m in matchers], dtype=float)
    personal_correlations = {
        "english_vs_recall": _pearson(english, recalls),
        "psychometric_vs_precision": _pearson(psychometric, precisions),
        "english_vs_resolution": _pearson(english, resolutions),
        "psychometric_vs_calibration": _pearson(psychometric, np.abs(calibrations)),
    }

    return PopulationAnalysisResult(
        mean_measures=mean_measures,
        positive_resolution_mean=positive_resolution_mean,
        under_confident_abs_calibration=under_confident_abs,
        expert_proportions=expert_proportions,
        full_expert_proportion=full_expert_proportion,
        personal_correlations=personal_correlations,
        profiles=profiles,
        thresholds=fitted_thresholds,
    )


def run_population_analysis(
    config: Optional[ExperimentConfig] = None,
) -> PopulationAnalysisResult:
    """Simulate the PO cohort and compute the Figure 8/9 statistics."""
    config = config or ExperimentConfig.reduced()
    dataset = build_dataset(
        n_po_matchers=config.n_po_matchers,
        n_oaei_matchers=2,
        random_state=config.random_state,
    )
    return analyze_population(dataset.po_matchers)
