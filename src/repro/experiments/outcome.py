"""Utilizing matching experts (Figures 10 and 11).

A train/test split of the PO cohort: MExI and the crowdsourcing quality
baselines (Conf, Qual. Test, Self-Assess) are trained on the training half
and used to select experts from the held-out half; the selected experts'
average P / R / Res / |Cal| are compared against the full held-out
population (``no_filter``).  The early-identification variant (Figure 11)
predicts from each matcher's first half-median decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.baselines import (
    ConfidenceBaseline,
    QualificationTestBaseline,
    SelfAssessmentBaseline,
)
from repro.core.characterizer import MExICharacterizer, MExIVariant
from repro.core.expert_model import characterize_population, labels_matrix
from repro.core.features.cache import FeatureBlockCache
from repro.core.filtering import (
    ExpertFilter,
    FilteringResult,
    evaluate_population,
    median_half_decisions,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.matching.matcher import HumanMatcher
from repro.ml.model_selection import train_test_split
from repro.simulation.dataset import build_dataset

#: The measures plotted in Figures 10/11, in display order.
OUTCOME_MEASURES: tuple[str, ...] = ("precision", "recall", "resolution", "abs_calibration")


@dataclass
class OutcomeResult:
    """Figures 10/11: per selection method, the quality of the selected experts."""

    filtering_results: dict[str, FilteringResult]
    early: bool
    early_decisions: Optional[int]

    def rows(self) -> list[dict[str, object]]:
        rows: list[dict[str, object]] = []
        no_filter = next(iter(self.filtering_results.values()))
        rows.append(
            {
                "method": "no_filter",
                "n_selected": no_filter.n_population,
                **{m: no_filter.population_performance[m] for m in OUTCOME_MEASURES},
            }
        )
        for name, result in self.filtering_results.items():
            rows.append(
                {
                    "method": name,
                    "n_selected": result.n_selected,
                    **{m: result.selected_performance[m] for m in OUTCOME_MEASURES},
                }
            )
        return rows

    def format_table(self, title: Optional[str] = None) -> str:
        if title is None:
            figure = "Figure 11 (early identification)" if self.early else "Figure 10"
            title = f"{figure}: quality of identified experts"
        return format_table(self.rows(), columns=("method", "n_selected", *OUTCOME_MEASURES), title=title)

    def improvement(self, method: str, measure: str) -> float:
        return self.filtering_results[method].improvement(measure)


def run_outcome_experiment(
    config: Optional[ExperimentConfig] = None,
    matchers: Optional[Sequence[HumanMatcher]] = None,
    early: bool = False,
    test_size: float = 0.4,
    cache: Optional[FeatureBlockCache] = None,
) -> OutcomeResult:
    """Run the Figure 10 (or Figure 11 when ``early``) expert-utilization experiment."""
    config = config or ExperimentConfig.reduced()
    if matchers is None:
        dataset = build_dataset(
            n_po_matchers=config.n_po_matchers,
            n_oaei_matchers=2,
            random_state=config.random_state,
        )
        matchers = dataset.po_matchers
    matchers = list(matchers)

    indices = list(range(len(matchers)))
    train_idx, test_idx, _, _ = train_test_split(
        indices, indices, test_size=test_size, random_state=config.random_state
    )
    train = [matchers[i] for i in train_idx]
    test = [matchers[i] for i in test_idx]

    train_profiles, _ = characterize_population(train)
    train_labels = labels_matrix(train_profiles)

    early_decisions = median_half_decisions(test) if early else None

    selectors = {
        "Conf": ConfidenceBaseline(),
        "Qual. Test": QualificationTestBaseline(),
        "Self-Assess": SelfAssessmentBaseline(),
        "MExI": MExICharacterizer(
            variant=MExIVariant.SUB_50,
            feature_sets=config.feature_sets,
            neural_config=config.neural_config,
            random_state=config.random_state,
            cache=cache,
        ),
    }

    # The full held-out population's quality is shared by every method.
    test_population_perf = evaluate_population(test)

    filtering_results: dict[str, FilteringResult] = {}
    for name, selector in selectors.items():
        selector.fit(train, train_labels)
        expert_filter = ExpertFilter(selector, require_all_characteristics=True)
        filtering_results[name] = expert_filter.evaluate(
            test,
            method_name=name,
            early_decisions=early_decisions,
            population_perf=test_population_perf,
        )

    return OutcomeResult(
        filtering_results=filtering_results, early=early, early_decisions=early_decisions
    )
