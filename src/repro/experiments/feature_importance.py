"""Per-feature importance (Table IV): top-2 informative features per feature set.

The paper applies SHAP to the trained MExI_50 model; here the offline
feature sets (Phi_LRSM, Phi_Beh, Phi_Mou) are ranked with permutation
importance of a classifier trained per expert characteristic, and the
neural sets (Phi_Seq, Phi_Spa) contribute their label-coefficient features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.expert_model import (
    EXPERT_CHARACTERISTICS,
    characterize_population,
    labels_matrix,
)
from repro.core.features.base import FeatureBlock
from repro.core.features.cache import FeatureBlockCache
from repro.core.features.pipeline import FeaturePipeline
from repro.core.importance import permutation_importance, top_features_by_set
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.matching.matcher import HumanMatcher
from repro.ml.forest import RandomForestClassifier
from repro.simulation.dataset import build_dataset


@dataclass
class FeatureImportanceStudyResult:
    """Table IV: per characteristic, the top-k features of each feature set."""

    top_features: dict[str, dict[str, list[tuple[str, float]]]]
    feature_names: list[str]

    def format_table(self, title: str = "Table IV: top informative features") -> str:
        rows = []
        for characteristic, per_set in self.top_features.items():
            for set_name, features in per_set.items():
                names = ", ".join(name for name, _ in features)
                rows.append(
                    {"characteristic": characteristic, "feature_set": set_name, "top": names}
                )
        return format_table(rows, columns=("characteristic", "feature_set", "top"), title=title)


def run_feature_importance(
    config: Optional[ExperimentConfig] = None,
    matchers: Optional[Sequence[HumanMatcher]] = None,
    top_k: int = 2,
    cache: Optional[FeatureBlockCache] = None,
) -> FeatureImportanceStudyResult:
    """Rank features per expert characteristic and keep the top-k per feature set.

    ``cache`` lets a larger study (e.g. the experiment runner) share feature
    blocks with the other tables computed over the same cohort.
    """
    config = config or ExperimentConfig.reduced()
    if matchers is None:
        dataset = build_dataset(
            n_po_matchers=config.n_po_matchers,
            n_oaei_matchers=2,
            random_state=config.random_state,
        )
        matchers = dataset.po_matchers
    matchers = list(matchers)

    profiles, _ = characterize_population(matchers)
    labels = labels_matrix(profiles)

    pipeline = FeaturePipeline(
        include=config.feature_sets,
        neural_config=config.neural_config,
        random_state=config.random_state,
        cache=cache,
    )
    pipeline.fit(matchers, labels)
    blocks = pipeline.transform_blocks(matchers)
    fused = FeatureBlock.hstack([blocks[name] for name in pipeline.include])
    feature_names = list(fused.names)

    top_features: dict[str, dict[str, list[tuple[str, float]]]] = {}
    for label_index, characteristic in enumerate(EXPERT_CHARACTERISTICS):
        y = labels[:, label_index]
        if np.unique(y).size < 2:
            top_features[characteristic] = {}
            continue
        classifier = RandomForestClassifier(
            n_estimators=20, max_depth=5, random_state=config.random_state
        )
        classifier.fit(fused.matrix, y)
        importance = permutation_importance(
            classifier,
            fused,
            y,
            n_repeats=3,
            random_state=config.random_state,
        )
        top_features[characteristic] = top_features_by_set(
            importance, pipeline.feature_set_of, k=top_k
        )

    return FeatureImportanceStudyResult(top_features=top_features, feature_names=feature_names)
