"""Expert identification (Table IIa): k-fold evaluation on the PO task.

For every fold, cognitive thresholds are fitted on the training matchers,
every baseline and every MExI variant is trained on the training fold and
evaluated on the held-out fold with the five accuracy measures; results are
averaged over folds and the significance of MExI's improvement over the top
learned baseline is assessed with a two-sample bootstrap test, as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.ablation import evaluate_predictions
from repro.core.baselines import BaselineCharacterizer, default_baselines
from repro.core.characterizer import MExICharacterizer, MExIVariant
from repro.core.expert_model import ExpertThresholds, characterize_population, labels_matrix
from repro.core.features.cache import FeatureBlockCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.matching.matcher import HumanMatcher
from repro.ml.model_selection import KFold
from repro.runtime import resolve_runner
from repro.simulation.dataset import build_dataset
from repro.stats.bootstrap import two_sample_bootstrap_test

#: Order of the accuracy measures reported in Table II.
ACCURACY_MEASURES: tuple[str, ...] = ("A_P", "A_R", "A_Res", "A_Cal", "A_ML")


@dataclass
class MethodResult:
    """Per-method accuracies averaged over folds (one row of Table II)."""

    method: str
    mean_accuracies: dict[str, float]
    per_fold_accuracies: dict[str, list[float]]
    significant: dict[str, bool] = field(default_factory=dict)

    def row(self) -> dict[str, object]:
        row: dict[str, object] = {"method": self.method}
        for measure in ACCURACY_MEASURES:
            value = self.mean_accuracies.get(measure, 0.0)
            marker = "*" if self.significant.get(measure, False) else ""
            row[measure] = f"{value:.2f}{marker}"
        return row


@dataclass
class IdentificationResult:
    """The full Table IIa: one row per baseline and MExI variant."""

    methods: list[MethodResult]
    n_folds: int
    n_matchers: int
    reference_baseline: str = "LRSM"

    def method(self, name: str) -> MethodResult:
        for result in self.methods:
            if result.method == name:
                return result
        raise KeyError(f"no results for method {name!r}")

    def format_table(self, title: str = "Table IIa: expert identification (PO)") -> str:
        rows = [result.row() for result in self.methods]
        return format_table(rows, columns=("method", *ACCURACY_MEASURES), title=title)


def _label_population(
    matchers: Sequence[HumanMatcher], thresholds: Optional[ExpertThresholds] = None
) -> tuple[np.ndarray, ExpertThresholds]:
    profiles, fitted = characterize_population(list(matchers), thresholds)
    return labels_matrix(profiles), fitted


def _mexi_variants(
    config: ExperimentConfig, cache: Optional[FeatureBlockCache] = None
) -> dict[str, MExICharacterizer]:
    """The three MExI training variants of Table II."""
    def build(variant: MExIVariant) -> MExICharacterizer:
        return MExICharacterizer(
            variant=variant,
            feature_sets=config.feature_sets,
            neural_config=config.neural_config,
            random_state=config.random_state,
            cache=cache,
        )

    return {
        "MExI_empty": build(MExIVariant.EMPTY),
        "MExI_50": build(MExIVariant.SUB_50),
        "MExI_70": build(MExIVariant.SUB_70),
    }


def evaluate_methods_on_split(
    train_matchers: Sequence[HumanMatcher],
    test_matchers: Sequence[HumanMatcher],
    config: ExperimentConfig,
    baselines: Optional[Sequence[BaselineCharacterizer]] = None,
    cache: Optional[FeatureBlockCache] = None,
) -> dict[str, dict[str, float]]:
    """Train and evaluate every method on one train/test split.

    The three MExI variants share ``cache``: the test cohort's offline
    feature blocks are extracted once instead of once per variant.
    """
    train_labels, thresholds = _label_population(train_matchers)
    test_labels, _ = _label_population(test_matchers, thresholds)

    accuracies: dict[str, dict[str, float]] = {}

    for baseline in baselines if baselines is not None else default_baselines(config.random_state):
        baseline.fit(train_matchers, train_labels)
        predictions = baseline.predict(test_matchers)
        accuracies[baseline.name] = evaluate_predictions(test_labels, predictions)

    for name, model in _mexi_variants(config, cache).items():
        model.fit(train_matchers, train_labels)
        predictions = model.predict(test_matchers)
        accuracies[name] = evaluate_predictions(test_labels, predictions)

    return accuracies


def _fold_task(task, shared) -> dict[str, dict[str, float]]:
    """Evaluate all methods on one fold (module-level for pickling)."""
    train, test = task
    config, cache = shared
    return evaluate_methods_on_split(train, test, config, cache=cache)


def _aggregate(
    fold_accuracies: list[dict[str, dict[str, float]]],
    config: ExperimentConfig,
    reference_baseline: str,
) -> list[MethodResult]:
    method_names = list(fold_accuracies[0])
    results = []
    for method in method_names:
        per_fold = {
            measure: [fold[method][measure] for fold in fold_accuracies]
            for measure in ACCURACY_MEASURES
        }
        mean = {measure: float(np.mean(values)) for measure, values in per_fold.items()}
        results.append(MethodResult(method=method, mean_accuracies=mean, per_fold_accuracies=per_fold))

    # Significance of MExI variants over the reference (top learned) baseline.
    reference = next((r for r in results if r.method == reference_baseline), None)
    if reference is not None:
        for result in results:
            if not result.method.startswith("MExI"):
                continue
            for measure in ACCURACY_MEASURES:
                mexi_scores = result.per_fold_accuracies[measure]
                reference_scores = reference.per_fold_accuracies[measure]
                if len(mexi_scores) < 2:
                    continue
                test = two_sample_bootstrap_test(
                    mexi_scores,
                    reference_scores,
                    n_bootstrap=config.n_bootstrap,
                    alternative="greater",
                    random_state=config.random_state,
                    runtime=config.runtime,
                )
                result.significant[measure] = test.is_significant
    return results


def run_identification_experiment(
    config: Optional[ExperimentConfig] = None,
    matchers: Optional[Sequence[HumanMatcher]] = None,
    cache: Optional[FeatureBlockCache] = None,
) -> IdentificationResult:
    """Run the full Table IIa experiment (k-fold CV on the PO cohort)."""
    config = config or ExperimentConfig.reduced()
    if cache is None:
        cache = FeatureBlockCache()
    if matchers is None:
        dataset = build_dataset(
            n_po_matchers=config.n_po_matchers,
            n_oaei_matchers=2,
            random_state=config.random_state,
        )
        matchers = dataset.po_matchers
    matchers = list(matchers)

    # The fold shuffle is drawn once here, before any fan-out; each fold's
    # methods then train independently (seeded from the config), so folds
    # run on the configured runtime with bitwise-identical tables.  Thread
    # workers share the (locked) cache; process workers get pickled copies.
    folds = KFold(n_splits=config.n_folds, shuffle=True, random_state=config.random_state)
    tasks = []
    for train_indices, test_indices in folds.split(matchers):
        train = [matchers[i] for i in train_indices]
        test = [matchers[i] for i in test_indices]
        tasks.append((train, test))
    fold_accuracies = resolve_runner(config.runtime).map(
        _fold_task, tasks, context=(config, cache)
    )

    methods = _aggregate(fold_accuracies, config, reference_baseline="LRSM")
    return IdentificationResult(
        methods=methods, n_folds=config.n_folds, n_matchers=len(matchers)
    )
