"""Experiment configuration shared by all tables and figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


def _small_neural_config() -> dict[str, dict]:
    """Neural-extractor settings small enough for CPU-only benchmark runs."""
    return {
        "seq": {"hidden_dim": 8, "dense_dim": 12, "max_sequence_length": 30, "epochs": 4},
        "spa": {"n_filters": 2, "epochs": 2, "pretrain_samples": 24},
    }


@dataclass
class ExperimentConfig:
    """Knobs controlling dataset size and model capacity for the experiments.

    ``paper_scale()`` reproduces the paper's cohort sizes (106 PO matchers,
    34 OAEI matchers, 5 folds); ``reduced()`` is the default used by tests
    and benchmarks so the whole suite stays laptop-scale.
    """

    n_po_matchers: int = 40
    n_oaei_matchers: int = 16
    n_folds: int = 3
    random_state: int = 42
    n_bootstrap: int = 500
    use_neural_features: bool = True
    neural_config: dict[str, dict] = field(default_factory=_small_neural_config)
    #: Runtime backend spec for the parallelisable loops (``"serial"``,
    #: ``"thread[:N]"``, ``"process[:N]"``); ``None`` defers to the
    #: ``REPRO_RUNTIME`` environment variable.  Results are bitwise
    #: identical on every backend.
    runtime: str | None = None

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's experimental scale (slow on CPU; used for full runs)."""
        return cls(
            n_po_matchers=106,
            n_oaei_matchers=34,
            n_folds=5,
            n_bootstrap=2000,
        )

    @classmethod
    def reduced(cls, random_state: int = 42) -> "ExperimentConfig":
        """A reduced-scale configuration for CI, tests and benchmarks."""
        return cls(random_state=random_state)

    @classmethod
    def tiny(cls, random_state: int = 42) -> "ExperimentConfig":
        """The smallest configuration that still exercises every code path."""
        return cls(
            n_po_matchers=18,
            n_oaei_matchers=8,
            n_folds=2,
            n_bootstrap=100,
            random_state=random_state,
            neural_config={
                "seq": {"hidden_dim": 4, "dense_dim": 6, "max_sequence_length": 15, "epochs": 2},
                "spa": {"n_filters": 2, "epochs": 1, "pretrain_samples": 8},
            },
        )

    @classmethod
    def from_scale(cls, scale: str, random_state: int = 42) -> "ExperimentConfig":
        """Build the configuration registered under a scale name.

        Args
        ----
        scale:
            One of :data:`SCALE_NAMES` (``"tiny"``, ``"reduced"``,
            ``"paper"``).
        random_state:
            Master seed installed on the returned configuration.

        Raises
        ------
        ValueError
            If ``scale`` is not a registered scale name.
        """
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; expected one of {SCALE_NAMES}")
        config = SCALES[scale]()
        config.random_state = random_state
        return config

    @property
    def feature_sets(self) -> tuple[str, ...]:
        """Feature sets active under this configuration."""
        if self.use_neural_features:
            return ("lrsm", "beh", "mou", "seq", "spa")
        return ("lrsm", "beh", "mou")


#: Scale name -> configuration factory, shared by the experiments runner and
#: the ``repro.serve`` CLI so both speak the same ``--scale`` vocabulary.
SCALES: dict[str, Callable[[], "ExperimentConfig"]] = {
    "tiny": ExperimentConfig.tiny,
    "reduced": ExperimentConfig.reduced,
    "paper": ExperimentConfig.paper_scale,
}

#: The registered scale names, in increasing-cost order.
SCALE_NAMES: tuple[str, ...] = tuple(SCALES)
