"""Archetype curves and heat maps (Figures 1, 4, 5 and 6).

For each archetype (A-D) a matcher is simulated on the PO task and its
accumulated precision / recall / confidence / resolution / calibration
curves are computed, together with an ASCII rendering of its movement heat
map -- the reproduction of the motivating figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.expert_model import ExpertThresholds
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_ascii_heatmap
from repro.matching.matcher import HumanMatcher
from repro.matching.metrics import AccumulatedCurves, accumulated_curves, evaluate_matcher
from repro.simulation.archetypes import Archetype
from repro.simulation.population import simulate_matcher
from repro.simulation.schemas import build_po_task


@dataclass
class ArchetypeCurve:
    """One archetype's simulated matcher, its curves and summary measures."""

    archetype: Archetype
    matcher: HumanMatcher
    curves: AccumulatedCurves
    final_precision: float
    final_recall: float
    final_resolution: float
    final_calibration: float

    def heatmap_ascii(self, shape: tuple[int, int] = (12, 32)) -> str:
        heat_map = self.matcher.movement.heat_map(shape=shape)
        return format_ascii_heatmap(
            heat_map.normalized(), title=f"Matcher {self.archetype.value} heat map"
        )

    def summary_row(self) -> dict[str, object]:
        return {
            "archetype": self.archetype.value,
            "decisions": self.matcher.n_decisions,
            "P": self.final_precision,
            "R": self.final_recall,
            "Res": self.final_resolution,
            "Cal": self.final_calibration,
        }


@dataclass
class ArchetypeCurvesResult:
    """Figures 1/4/5/6: the four archetype matchers side by side."""

    curves: dict[str, ArchetypeCurve]
    thresholds: ExpertThresholds

    def archetype(self, name: str) -> ArchetypeCurve:
        return self.curves[name]

    def summary_rows(self) -> list[dict[str, object]]:
        return [curve.summary_row() for curve in self.curves.values()]


def run_archetype_curves(
    config: Optional[ExperimentConfig] = None,
    archetypes: Sequence[Archetype] = (Archetype.A, Archetype.B, Archetype.C, Archetype.D),
    compute_resolution: bool = True,
) -> ArchetypeCurvesResult:
    """Simulate one matcher per archetype and compute its elapsed-measure curves."""
    config = config or ExperimentConfig.reduced()
    pair, reference = build_po_task(random_state=config.random_state)

    curves: dict[str, ArchetypeCurve] = {}
    for index, archetype in enumerate(archetypes):
        matcher = simulate_matcher(
            matcher_id=f"archetype-{archetype.value}",
            pair=pair,
            reference=reference,
            archetype=archetype,
            random_state=config.random_state + index,
        )
        performance = evaluate_matcher(matcher.history, reference)
        curve = accumulated_curves(matcher.history, reference, compute_resolution=compute_resolution)
        curves[archetype.value] = ArchetypeCurve(
            archetype=archetype,
            matcher=matcher,
            curves=curve,
            final_precision=performance.precision,
            final_recall=performance.recall,
            final_resolution=performance.resolution,
            final_calibration=performance.calibration,
        )

    thresholds = ExpertThresholds(delta_resolution=0.5, delta_calibration=0.2)
    return ArchetypeCurvesResult(curves=curves, thresholds=thresholds)
