"""Generalizability (Table IIb): train on the PO cohort, test on the OAEI cohort.

The characterizer never sees ontology-alignment matchers during training;
cognitive thresholds are the PO training thresholds, applied unchanged to
the OAEI population, exactly as in the paper's proof-of-concept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.ablation import evaluate_predictions
from repro.core.baselines import default_baselines
from repro.core.characterizer import MExICharacterizer, MExIVariant
from repro.core.expert_model import characterize_population, labels_matrix
from repro.core.features.cache import FeatureBlockCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.identification import ACCURACY_MEASURES, MethodResult
from repro.experiments.reporting import format_table
from repro.matching.matcher import HumanMatcher
from repro.simulation.dataset import build_dataset


@dataclass
class GeneralizationResult:
    """Table IIb: accuracy of every method when transferring PO -> OAEI."""

    methods: list[MethodResult]
    n_train: int
    n_test: int

    def method(self, name: str) -> MethodResult:
        for result in self.methods:
            if result.method == name:
                return result
        raise KeyError(f"no results for method {name!r}")

    def format_table(self, title: str = "Table IIb: generalization (OAEI)") -> str:
        rows = [result.row() for result in self.methods]
        return format_table(rows, columns=("method", *ACCURACY_MEASURES), title=title)


def run_generalization_experiment(
    config: Optional[ExperimentConfig] = None,
    train_matchers: Optional[Sequence[HumanMatcher]] = None,
    test_matchers: Optional[Sequence[HumanMatcher]] = None,
    cache: Optional[FeatureBlockCache] = None,
) -> GeneralizationResult:
    """Train every method on the PO cohort and evaluate on the OAEI cohort.

    The three MExI variants share ``cache``, so the PO training cohort's and
    the OAEI test cohort's offline blocks are each extracted only once.
    """
    config = config or ExperimentConfig.reduced()
    if cache is None:
        cache = FeatureBlockCache()
    if train_matchers is None or test_matchers is None:
        dataset = build_dataset(
            n_po_matchers=config.n_po_matchers,
            n_oaei_matchers=config.n_oaei_matchers,
            random_state=config.random_state,
        )
        train_matchers = dataset.po_matchers
        test_matchers = dataset.oaei_matchers
    train_matchers = list(train_matchers)
    test_matchers = list(test_matchers)

    train_profiles, thresholds = characterize_population(train_matchers)
    train_labels = labels_matrix(train_profiles)
    test_profiles, _ = characterize_population(test_matchers, thresholds)
    test_labels = labels_matrix(test_profiles)

    methods: list[MethodResult] = []

    for baseline in default_baselines(config.random_state):
        baseline.fit(train_matchers, train_labels)
        accuracies = evaluate_predictions(test_labels, baseline.predict(test_matchers))
        methods.append(
            MethodResult(
                method=baseline.name,
                mean_accuracies=accuracies,
                per_fold_accuracies={m: [accuracies[m]] for m in ACCURACY_MEASURES},
            )
        )

    variants = {
        "MExI_empty": MExIVariant.EMPTY,
        "MExI_50": MExIVariant.SUB_50,
        "MExI_70": MExIVariant.SUB_70,
    }
    for name, variant in variants.items():
        model = MExICharacterizer(
            variant=variant,
            feature_sets=config.feature_sets,
            neural_config=config.neural_config,
            random_state=config.random_state,
            cache=cache,
        )
        model.fit(train_matchers, train_labels)
        accuracies = evaluate_predictions(test_labels, model.predict(test_matchers))
        methods.append(
            MethodResult(
                method=name,
                mean_accuracies=accuracies,
                per_fold_accuracies={m: [accuracies[m]] for m in ACCURACY_MEASURES},
            )
        )

    return GeneralizationResult(
        methods=methods, n_train=len(train_matchers), n_test=len(test_matchers)
    )
