"""Command-line experiment runner.

Regenerates any of the paper's tables and figures from the command line:

    python -m repro.experiments fig8 table2a --scale reduced
    python -m repro.experiments all --scale tiny
    python -m repro.experiments table2a --scale paper     # full cohort sizes (slow)

Each experiment prints the same rows the paper reports (see EXPERIMENTS.md
for the paper-vs-measured record).
"""

from __future__ import annotations

import argparse
from typing import Callable, Sequence

from repro.core.features.cache import FeatureBlockCache
from repro.experiments.ablation_study import run_ablation_study
from repro.experiments.archetype_curves import run_archetype_curves
from repro.experiments.config import SCALE_NAMES, ExperimentConfig
from repro.experiments.feature_importance import run_feature_importance
from repro.experiments.generalization import run_generalization_experiment
from repro.experiments.identification import run_identification_experiment
from repro.experiments.outcome import run_outcome_experiment
from repro.experiments.population_analysis import run_population_analysis
from repro.experiments.reporting import format_table


def _run_archetypes(config: ExperimentConfig, cache: FeatureBlockCache) -> str:
    result = run_archetype_curves(config)
    table = format_table(
        result.summary_rows(),
        columns=("archetype", "decisions", "P", "R", "Res", "Cal"),
        title="Figures 1/4/5/6: matcher archetypes",
    )
    heatmaps = "\n\n".join(curve.heatmap_ascii() for curve in result.curves.values())
    return f"{table}\n\n{heatmaps}"


def _run_population(config: ExperimentConfig, cache: FeatureBlockCache) -> str:
    result = run_population_analysis(config)
    return "\n\n".join([result.format_figure8(), result.format_figure9()])


def _run_outcome(config: ExperimentConfig, cache: FeatureBlockCache, early: bool) -> str:
    return run_outcome_experiment(config, early=early, cache=cache).format_table()


#: Experiment id -> callable producing the printable report.  Every callable
#: receives the per-run FeatureBlockCache so feature blocks extracted for one
#: table are reused by every other artifact over the same cohorts.
EXPERIMENTS: dict[str, Callable[[ExperimentConfig, FeatureBlockCache], str]] = {
    "fig1": _run_archetypes,
    "fig8": _run_population,
    "fig9": _run_population,
    "table2a": lambda config, cache: run_identification_experiment(config, cache=cache).format_table(),
    "table2b": lambda config, cache: run_generalization_experiment(config, cache=cache).format_table(),
    "table3": lambda config, cache: run_ablation_study(config, cache=cache).format_table(),
    "table4": lambda config, cache: run_feature_importance(config, cache=cache).format_table(),
    "fig10": lambda config, cache: _run_outcome(config, cache, early=False),
    "fig11": lambda config, cache: _run_outcome(config, cache, early=True),
}

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables and figures of 'Learning to Characterize Matching Experts'.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifacts to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALE_NAMES),
        default="reduced",
        help="cohort / model scale (default: reduced; 'paper' uses 106+34 matchers)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master random seed")
    parser.add_argument(
        "--runtime",
        default=None,
        metavar="BACKEND[:N]",
        help=(
            "runtime backend for the parallelisable loops: serial, thread[:N] "
            "or process[:N] (default: the REPRO_RUNTIME environment variable, "
            "else serial; results are bitwise identical on every backend)"
        ),
    )
    return parser


def run(
    experiment_ids: Sequence[str],
    scale: str = "reduced",
    seed: int = 42,
    runtime: str | None = None,
) -> dict[str, str]:
    """Run the requested experiments and return their printable reports.

    One :class:`FeatureBlockCache` is shared across the whole invocation:
    artifacts built over the same cohorts (e.g. ``table3`` and ``table4``)
    extract each feature block once.  ``runtime`` selects the backend for
    the parallelisable loops (see :mod:`repro.runtime`); every backend
    prints identical tables.
    """
    config = ExperimentConfig.from_scale(scale, random_state=seed)
    config.runtime = runtime
    cache = FeatureBlockCache()
    selected = sorted(EXPERIMENTS) if "all" in experiment_ids else list(dict.fromkeys(experiment_ids))
    reports: dict[str, str] = {}
    for experiment_id in selected:
        reports[experiment_id] = EXPERIMENTS[experiment_id](config, cache)
    return reports


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    reports = run(args.experiments, scale=args.scale, seed=args.seed, runtime=args.runtime)
    for experiment_id, report in reports.items():
        print(f"\n===== {experiment_id} =====")
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
