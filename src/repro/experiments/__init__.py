"""Experiment harness: one module per table / figure of the paper's evaluation.

Every experiment accepts an :class:`ExperimentConfig` so tests and
benchmarks can run reduced-scale versions (fewer matchers, smaller
networks, fewer folds), and returns a structured result object with a
``format_table()`` / ``format_report()`` method that prints the same rows
the paper reports.

| Module                                | Paper artifact       |
|---------------------------------------|----------------------|
| :mod:`repro.experiments.archetype_curves`    | Figures 1, 4, 5, 6 |
| :mod:`repro.experiments.population_analysis` | Figures 8, 9       |
| :mod:`repro.experiments.identification`      | Table IIa          |
| :mod:`repro.experiments.generalization`      | Table IIb          |
| :mod:`repro.experiments.ablation_study`      | Table III          |
| :mod:`repro.experiments.feature_importance`  | Table IV           |
| :mod:`repro.experiments.outcome`             | Figures 10, 11     |
"""

from repro.experiments.config import SCALE_NAMES, SCALES, ExperimentConfig
from repro.experiments.population_analysis import run_population_analysis
from repro.experiments.identification import run_identification_experiment
from repro.experiments.generalization import run_generalization_experiment
from repro.experiments.ablation_study import run_ablation_study
from repro.experiments.feature_importance import run_feature_importance
from repro.experiments.outcome import run_outcome_experiment
from repro.experiments.archetype_curves import run_archetype_curves

__all__ = [
    "ExperimentConfig",
    "SCALES",
    "SCALE_NAMES",
    "run_population_analysis",
    "run_identification_experiment",
    "run_generalization_experiment",
    "run_ablation_study",
    "run_feature_importance",
    "run_outcome_experiment",
    "run_archetype_curves",
]
