"""Feature-set ablation study (Table III) over a PO train/test split."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.ablation import AblationResult, run_ablation
from repro.core.characterizer import MExIVariant
from repro.core.expert_model import characterize_population, labels_matrix
from repro.core.features.cache import FeatureBlockCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.identification import ACCURACY_MEASURES
from repro.experiments.reporting import format_table
from repro.matching.matcher import HumanMatcher
from repro.ml.model_selection import train_test_split
from repro.simulation.dataset import build_dataset


@dataclass
class AblationStudyResult:
    """Table III: the full model plus every include/exclude configuration."""

    results: list[AblationResult]

    def rows(self) -> list[dict[str, object]]:
        return [result.row() for result in self.results]

    def by_mode(self, mode: str) -> list[AblationResult]:
        return [result for result in self.results if result.mode == mode]

    def format_table(self, title: str = "Table III: feature-set ablation (MExI_50, PO)") -> str:
        return format_table(
            self.rows(), columns=("mode", "feature_set", *ACCURACY_MEASURES), title=title
        )


def run_ablation_study(
    config: Optional[ExperimentConfig] = None,
    matchers: Optional[Sequence[HumanMatcher]] = None,
    test_size: float = 0.3,
    cache: Optional[FeatureBlockCache] = None,
    use_cache: bool = True,
    classifier_bank: Optional[Callable[[], list]] = None,
) -> AblationStudyResult:
    """Split the PO cohort, then run the include/exclude ablation on the split.

    All eleven configurations share ``cache`` (one is created when omitted);
    ``use_cache=False`` forces the re-extract-everything behaviour, which the
    feature-engine benchmark uses as its baseline.
    """
    config = config or ExperimentConfig.reduced()
    if matchers is None:
        dataset = build_dataset(
            n_po_matchers=config.n_po_matchers,
            n_oaei_matchers=2,
            random_state=config.random_state,
        )
        matchers = dataset.po_matchers
    matchers = list(matchers)

    indices = list(range(len(matchers)))
    train_idx, test_idx, _, _ = train_test_split(
        indices, indices, test_size=test_size, random_state=config.random_state
    )
    train = [matchers[i] for i in train_idx]
    test = [matchers[i] for i in test_idx]

    train_profiles, thresholds = characterize_population(train)
    train_labels = labels_matrix(train_profiles)
    test_profiles, _ = characterize_population(test, thresholds)
    test_labels = labels_matrix(test_profiles)

    results = run_ablation(
        train,
        train_labels,
        test,
        test_labels,
        variant=MExIVariant.SUB_50,
        feature_sets=config.feature_sets,
        neural_config=config.neural_config,
        random_state=config.random_state,
        cache=cache,
        use_cache=use_cache,
        classifier_bank=classifier_bank,
        runtime=config.runtime,
    )
    return AblationStudyResult(results=results)
