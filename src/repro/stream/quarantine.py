"""Bounded quarantine for events rejected by screened ingestion.

The strict ingest path (:meth:`StreamingEventBuffer.extend`) raises on the
first malformed or out-of-window event — correct for trusted replay, fatal
for live serving where one adversarial or corrupted row must not abort a
session.  The screened path
(:meth:`StreamingEventBuffer.extend_screened`) diverts such events into a
:class:`QuarantineLog` instead: a bounded record buffer with **exact**
counters (overall, per reason, per session), so operators can audit what
was dropped without the log itself becoming an unbounded liability.

Quarantine reasons
------------------
``malformed``
    Non-finite or negative timestamp, or an event code outside
    ``[0, N_EVENT_TYPES)`` — events the strict path rejects with
    ``ValueError``.
``out_of_window``
    Older than the reorder window allows (or older than a flush
    barrier) — events the strict path rejects with
    :class:`~repro.stream.ingest.StreamOrderError`.
``duplicate``
    Bitwise-identical ``(t, x, y, code)`` payload to an event already
    accepted at or above the current watermark — the transport-level
    redelivery signature.  The strict path would accept these; screening
    diverts them so at-least-once transports do not double-count.  The
    ingestion adapters (:mod:`repro.adapters`) reuse the reason for
    exact duplicate rows inside a source file.
``unparseable``
    A source row the format adapter could not decode at all (garbage
    text, wrong field count, broken JSON) — row-level, raised before any
    field exists to validate.
``schema_invalid``
    A decoded row with a field that fails its
    :class:`~repro.adapters.FieldSpec` (wrong type, out of range,
    unknown enum value, entity outside the vocabulary).
``clock_skew``
    A row whose timestamp jumps *backwards* beyond the adapter's
    tolerance relative to the session's running maximum in the source —
    the broken-source-clock signature, distinct from transport reorder
    (``out_of_window``) which is judged against the live watermark.

The last three reasons are produced by the adapter layer
(:mod:`repro.adapters`); the stream layer produces the first three.
Both layers account into the same log, so operators see one exact
per-reason budget for everything that was dropped.

The screening invariant: the surviving events are fed to the strict path
unchanged, so ``drain()`` / ``snapshot()`` are bitwise identical to a
clean run ingesting only the survivors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.matching.events import N_EVENT_TYPES

#: The structured quarantine reasons, in check order: the first three are
#: produced by the stream layer's screened ingest, the last three by the
#: ingestion adapters (:mod:`repro.adapters`).
QUARANTINE_REASONS = (
    "malformed",
    "out_of_window",
    "duplicate",
    "schema_invalid",
    "unparseable",
    "clock_skew",
)

#: Default bound on retained records (counters are always exact).
DEFAULT_MAX_RECORDS = 256


@dataclass(frozen=True)
class QuarantinedEvent:
    """One diverted event: its payload, the reason, and a human detail."""

    session_id: str
    reason: str
    detail: str
    x: float
    y: float
    code: int
    t: float


class QuarantineLog:
    """Bounded record buffer with exact per-reason / per-session counters.

    Only the most recent ``max_records`` :class:`QuarantinedEvent`
    records are retained (oldest evicted first); the counters are never
    truncated, so accounting stays exact however long the stream runs.
    """

    def __init__(self, max_records: int = DEFAULT_MAX_RECORDS) -> None:
        if max_records < 1:
            raise ValueError("max_records must be positive")
        self.max_records = int(max_records)
        self._records: deque[QuarantinedEvent] = deque(maxlen=self.max_records)
        self.total = 0
        self.by_reason: dict[str, int] = {reason: 0 for reason in QUARANTINE_REASONS}
        self.by_session: dict[str, dict[str, int]] = {}

    def add(
        self,
        *,
        session_id: str,
        reason: str,
        detail: str,
        x: float,
        y: float,
        code: int,
        t: float,
    ) -> QuarantinedEvent:
        """Record one diverted event and bump every counter it touches."""
        if reason not in self.by_reason:
            raise ValueError(
                f"unknown quarantine reason {reason!r}; "
                f"expected one of {QUARANTINE_REASONS}"
            )
        event = QuarantinedEvent(
            session_id=session_id, reason=reason, detail=detail,
            x=float(x), y=float(y), code=int(code), t=float(t),
        )
        self._records.append(event)
        self.total += 1
        self.by_reason[reason] += 1
        per_session = self.by_session.setdefault(
            session_id, {reason_name: 0 for reason_name in QUARANTINE_REASONS}
        )
        per_session[reason] += 1
        # Mirror the same increment into the metrics registry so the
        # /metrics series and counts() can never disagree.
        from repro import obs

        if obs.obs_enabled():
            obs.counter(
                "repro_quarantine_total",
                "Events diverted to quarantine, by reason.",
                labelnames=("reason",),
            ).inc(reason=reason)
        return event

    def records(self) -> list[QuarantinedEvent]:
        """The retained (most recent) records, oldest first."""
        return list(self._records)

    def session_counts(self, session_id: str) -> dict[str, int]:
        """Exact per-reason counts for one session (zeros if never seen)."""
        counts = self.by_session.get(session_id)
        if counts is None:
            return {reason: 0 for reason in QUARANTINE_REASONS}
        return dict(counts)

    def counts(self) -> dict:
        """A JSON-friendly snapshot of every counter."""
        return {
            "total": self.total,
            "retained": len(self._records),
            "by_reason": dict(self.by_reason),
            "by_session": {
                session_id: dict(per_session)
                for session_id, per_session in self.by_session.items()
            },
        }

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"QuarantineLog(total={self.total}, retained={len(self._records)}, "
            f"by_reason={self.by_reason})"
        )


def corrupt_event_columns(
    x: np.ndarray,
    y: np.ndarray,
    codes: np.ndarray,
    t: np.ndarray,
    rng: np.random.Generator,
    *,
    watermark: float = -np.inf,
    count: int = 1,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Append ``count`` deterministically corrupted events to a batch.

    The chaos companion of the quarantine path (driven by the
    ``stream.ingest`` fault seam): each appended event is one of the
    quarantinable shapes — NaN timestamp, out-of-range code, an exact
    duplicate of a batch event, or a stale pre-watermark timestamp (when
    the watermark is finite and positive; otherwise the stale variant
    degenerates to a NaN timestamp).  Corruption is appended at the *end*
    of the batch so the screening decisions for the original events are
    unchanged — the survivors, and therefore the committed stream, stay
    bitwise identical to the clean run.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    codes = np.asarray(codes, dtype=np.int64).ravel()
    t = np.asarray(t, dtype=np.float64).ravel()
    extra_x, extra_y, extra_codes, extra_t = [], [], [], []
    for _ in range(int(count)):
        variant = int(rng.integers(0, 4))
        if variant == 2 and t.size:  # duplicate of an original batch event
            index = int(rng.integers(0, t.size))
            extra_x.append(float(x[index]))
            extra_y.append(float(y[index]))
            extra_codes.append(int(codes[index]))
            extra_t.append(float(t[index]))
            continue
        px = float(np.round(rng.uniform(0.0, 100.0), 3))
        py = float(np.round(rng.uniform(0.0, 100.0), 3))
        if variant == 0:  # malformed: NaN timestamp
            extra_x.append(px)
            extra_y.append(py)
            extra_codes.append(0)
            extra_t.append(float("nan"))
        elif variant == 1:  # malformed: out-of-range code
            reference = float(t[-1]) if t.size else max(watermark, 0.0)
            extra_x.append(px)
            extra_y.append(py)
            extra_codes.append(N_EVENT_TYPES + int(rng.integers(0, 3)))
            extra_t.append(max(reference, 0.0))
        else:  # stale: behind the watermark (fallback: NaN timestamp)
            if np.isfinite(watermark) and watermark > 0:
                extra_x.append(px)
                extra_y.append(py)
                extra_codes.append(0)
                extra_t.append(float(watermark) / 2.0)
            else:
                extra_x.append(px)
                extra_y.append(py)
                extra_codes.append(0)
                extra_t.append(float("nan"))
    return (
        np.concatenate([x, np.array(extra_x, dtype=np.float64)]),
        np.concatenate([y, np.array(extra_y, dtype=np.float64)]),
        np.concatenate([codes, np.array(extra_codes, dtype=np.int64)]),
        np.concatenate([t, np.array(extra_t, dtype=np.float64)]),
    )


__all__ = [
    "DEFAULT_MAX_RECORDS",
    "QUARANTINE_REASONS",
    "QuarantineLog",
    "QuarantinedEvent",
    "corrupt_event_columns",
]
