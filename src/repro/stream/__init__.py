"""Streaming session layer: live ingestion, online features, live scoring.

Everything upstream of this package is one-shot: a
:class:`~repro.matching.matcher.HumanMatcher` is materialised in full,
then scored.  The streaming layer makes the repo's outputs
*time-evolving* — events are ingested as they arrive and per-session
characterizations stay continuously current:

* :mod:`repro.stream.ingest` —
  :class:`StreamingEventBuffer`: amortized-growth columnar ingestion
  over :class:`~repro.matching.events.EventArray`, with
  monotonic-timestamp validation and a bounded reorder window for
  out-of-order arrival;
* :mod:`repro.stream.quarantine` — :class:`QuarantineLog`: bounded,
  exactly-counted diversion of malformed / out-of-window / duplicate
  events for the screened ingest path (live serving keeps going, the
  committed stream stays bitwise identical to a clean run on the
  survivors);
* :mod:`repro.stream.incremental` — online maintainers for the hot
  behavioral features (heat maps, per-type counts, Welford running
  statistics), provably equivalent to batch recomputation;
* :mod:`repro.stream.session` — :class:`SessionManager`: many concurrent
  sessions with LRU/idle eviction, dirty-flagging, and batched
  re-characterization through the
  :class:`~repro.serve.CharacterizationService`;
* :mod:`repro.stream.checkpoint` — versioned, fingerprinted
  snapshot/restore of the full session state;
* :mod:`repro.stream.cli` — the ``python -m repro.stream replay``
  live-workload driver.

See the "Streaming session layer" section of ``docs/architecture.md``.
"""

from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointStore,
    load_checkpoint,
    read_checkpoint_manifest,
    save_checkpoint,
)
from repro.stream.incremental import (
    IncrementalHeatMap,
    IncrementalMotionStats,
    IncrementalTypeCounts,
    SessionFeatureState,
)
from repro.stream.ingest import StreamingEventBuffer, StreamOrderError
from repro.stream.quarantine import (
    QUARANTINE_REASONS,
    QuarantinedEvent,
    QuarantineLog,
)
from repro.stream.session import MatcherSession, SessionManager

__all__ = [
    "StreamingEventBuffer",
    "StreamOrderError",
    "QUARANTINE_REASONS",
    "QuarantineLog",
    "QuarantinedEvent",
    "IncrementalHeatMap",
    "IncrementalTypeCounts",
    "IncrementalMotionStats",
    "SessionFeatureState",
    "MatcherSession",
    "SessionManager",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_manifest",
]
