"""Live multi-session tracking and batched re-characterization.

:class:`SessionManager` is the control plane of the streaming layer: it
tracks many concurrent matcher sessions, each one an append-friendly
event buffer plus incrementally-maintained features and a growing
decision history, and keeps their expertise characterizations current by
re-scoring **only the sessions that changed** (dirty-flagged) in batches
through the existing :class:`~repro.serve.CharacterizationService` — so
live scoring inherits the serving layer's determinism contract: scores
are bitwise identical on every :class:`~repro.runtime.TaskRunner`
backend and chunk size >= 2.

Capacity is bounded two ways, both opt-in:

* **LRU eviction** — with ``max_sessions`` set, ingesting into a new
  session evicts the least-recently-updated one;
* **idle eviction** — :meth:`SessionManager.evict_idle` drops sessions
  whose last activity (in *event time*, so replays behave like live
  traffic) is older than ``idle_timeout``.

Evicted sessions are handed to the optional ``on_evict`` callback before
they are dropped, which is where a checkpoint
(:func:`repro.stream.checkpoint.save_checkpoint`) or a downstream sink
plugs in.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable, Optional

import numpy as np

from repro import obs
from repro.matching.history import Decision, DecisionHistory
from repro.matching.matcher import HumanMatcher
from repro.matching.mouse import MovementMap
from repro.runtime import RuntimeSpec
from repro.runtime.faults import active_injector
from repro.serve.service import BatchScores, CharacterizationService
from repro.stream.incremental import SessionFeatureState
from repro.stream.ingest import StreamingEventBuffer
from repro.stream.quarantine import QuarantineLog, corrupt_event_columns

# Ingest runs once per event batch per session — resolving these through
# the registry every call dominates telemetry overhead, so the hot path
# goes through resolve-once handles instead.
_INGEST_BATCHES = obs.MetricHandle(
    "counter", "repro_stream_ingest_batches_total", "Ingest batches routed to sessions."
)
_INGESTED_EVENTS = obs.MetricHandle(
    "counter",
    "repro_stream_events_ingested_total",
    "Events accepted into session buffers (post-screening).",
)


class MatcherSession:
    """One live matcher: event buffer, incremental features, decisions, scores."""

    def __init__(
        self,
        session_id: str,
        shape: tuple[int, int],
        screen: tuple[int, int] = MovementMap.DEFAULT_SCREEN,
        reorder_window: float = 0.0,
        quarantine: Optional[QuarantineLog] = None,
    ) -> None:
        rows, cols = shape
        if rows <= 0 or cols <= 0:
            raise ValueError("session matrix shape must be positive")
        self.session_id = session_id
        self.shape = (int(rows), int(cols))
        self.screen = (int(screen[0]), int(screen[1]))
        self.buffer = StreamingEventBuffer(reorder_window=reorder_window)
        self.features = SessionFeatureState(self.screen)
        self.quarantine = quarantine
        self.decisions: list[Decision] = []
        self.dirty = False
        self.last_activity = 0.0  # event time of the newest ingest
        self.last_labels: Optional[np.ndarray] = None
        self.last_probabilities: Optional[np.ndarray] = None
        self.n_characterizations = 0
        self._ingests = 0  # arrival counter; keys the stream.ingest fault rng

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def ingest_events(self, x, y, codes, t) -> None:
        """Append a column batch of mouse events and advance the features.

        With a quarantine log configured the batch goes through the
        screened path (:meth:`StreamingEventBuffer.extend_screened`):
        malformed, out-of-window and duplicate events are diverted into
        the log instead of raising, and the ``stream.ingest`` fault seam
        (when armed) appends deterministic corruption to exercise exactly
        that path.  Without a log the strict :meth:`extend` contract is
        unchanged.
        """
        before = len(self.buffer)
        if self.quarantine is not None:
            injector = active_injector()
            if injector is not None and injector.fires(
                "stream.ingest", key=self.session_id
            ):
                rng = injector.rng(
                    "stream.ingest", key=self.session_id, attempt=self._ingests
                )
                x, y, codes, t = corrupt_event_columns(
                    x, y, codes, t, rng,
                    watermark=self.buffer.watermark,
                    count=int(rng.integers(1, 4)),
                )
            self.buffer.extend_screened(
                x, y, codes, t, self.quarantine, session_id=self.session_id
            )
        else:
            self.buffer.extend(x, y, codes, t)
        self._ingests += 1
        self.features.update(self.buffer.drain())
        accepted = len(self.buffer) - before
        if accepted > 0:
            self.last_activity = max(self.last_activity, self.buffer.max_timestamp)
            self.dirty = True
        if obs.obs_enabled():
            _INGEST_BATCHES().inc()
            _INGESTED_EVENTS().inc(max(accepted, 0))

    def add_decision(
        self, row: int, col: int, confidence: float, timestamp: float
    ) -> None:
        """Record one matching decision ``<(a_i, b_j), c, t>``."""
        decision = Decision(row=row, col=col, confidence=confidence, timestamp=timestamp)
        rows, cols = self.shape
        if decision.row >= rows or decision.col >= cols:
            raise ValueError(
                f"decision on pair {decision.pair} outside matrix of shape {self.shape}"
            )
        self.decisions.append(decision)
        self.last_activity = max(self.last_activity, decision.timestamp)
        self.dirty = True

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #

    @property
    def scoreable(self) -> bool:
        """Whether the session has decisions to characterize yet."""
        return bool(self.decisions)

    def matcher(self) -> HumanMatcher:
        """The session frozen as a :class:`HumanMatcher` ``D = (H, G)``.

        The movement snapshot includes events still inside the reorder
        window (pending), so scoring always sees every ingested event.
        """
        history = DecisionHistory(self.decisions, shape=self.shape)
        movement = MovementMap(screen=self.screen, data=self.buffer.snapshot())
        return HumanMatcher(
            matcher_id=self.session_id, history=history, movement=movement
        )

    def report(self) -> dict:
        """Live monitoring snapshot (incremental features, no replay)."""
        payload = self.features.report()
        payload.update(
            {
                "session_id": self.session_id,
                "n_decisions": len(self.decisions),
                "dirty": self.dirty,
                "n_pending_events": self.buffer.n_pending,
                "n_characterizations": self.n_characterizations,
            }
        )
        if self.quarantine is not None:
            payload["quarantined"] = self.quarantine.session_counts(self.session_id)
        return payload

    def __repr__(self) -> str:
        return (
            f"MatcherSession(id={self.session_id!r}, events={len(self.buffer)}, "
            f"decisions={len(self.decisions)}, dirty={self.dirty})"
        )


class SessionManager:
    """Tracks many concurrent sessions and re-characterizes the dirty ones.

    Parameters
    ----------
    service:
        The scoring backend (a loaded or in-memory
        :class:`~repro.serve.CharacterizationService`).
    max_sessions:
        LRU capacity; ``None`` means unbounded.
    idle_timeout:
        Event-time idleness (seconds) after which :meth:`evict_idle`
        drops a session; ``None`` disables idle eviction.
    reorder_window:
        Reorder window (seconds) every session's event buffer accepts.
    screen:
        Default screen resolution for new sessions.
    on_evict:
        Callback invoked with each :class:`MatcherSession` just before it
        is dropped (checkpointing hook).
    quarantine:
        A shared :class:`~repro.stream.quarantine.QuarantineLog`; when
        set, every session ingests through the screened path (malformed /
        out-of-window / duplicate events diverted instead of raising).
        ``None`` (default) keeps the strict fail-fast contract.
    """

    def __init__(
        self,
        service: CharacterizationService,
        *,
        max_sessions: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        reorder_window: float = 0.0,
        screen: tuple[int, int] = MovementMap.DEFAULT_SCREEN,
        on_evict: Optional[Callable[[MatcherSession], None]] = None,
        quarantine: Optional[QuarantineLog] = None,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        if reorder_window < 0:
            raise ValueError("reorder_window must be non-negative")
        self.service = service
        self.max_sessions = max_sessions
        self.idle_timeout = idle_timeout
        self.reorder_window = float(reorder_window)
        self.screen = screen
        self.on_evict = on_evict
        self.quarantine = quarantine
        self._sessions: "OrderedDict[str, MatcherSession]" = OrderedDict()
        self.n_evicted = 0

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def session_ids(self) -> list[str]:
        """Session ids, least-recently-updated first."""
        return list(self._sessions)

    def open(
        self,
        session_id: str,
        shape: tuple[int, int],
        screen: Optional[tuple[int, int]] = None,
    ) -> MatcherSession:
        """Create (and LRU-register) a new session.

        Raises
        ------
        ValueError
            If the session already exists.
        """
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} already exists")
        session = MatcherSession(
            session_id,
            shape,
            screen=screen if screen is not None else self.screen,
            reorder_window=self.reorder_window,
            quarantine=self.quarantine,
        )
        self._sessions[session_id] = session
        self._evict_overflow()
        return session

    def session(self, session_id: str) -> MatcherSession:
        """Look up a session (without touching its LRU position).

        Raises
        ------
        KeyError
            If the session does not exist (it may have been evicted).
        """
        return self._sessions[session_id]

    def _touch(self, session_id: str) -> MatcherSession:
        session = self._sessions[session_id]
        self._sessions.move_to_end(session_id)
        return session

    def _drop(self, session_id: str) -> MatcherSession:
        session = self._sessions.pop(session_id)
        self.n_evicted += 1
        if self.on_evict is not None:
            self.on_evict(session)
        return session

    def _evict_overflow(self) -> list[str]:
        evicted = []
        while self.max_sessions is not None and len(self._sessions) > self.max_sessions:
            victim = next(iter(self._sessions))
            self._drop(victim)
            evicted.append(victim)
        return evicted

    def adopt(self, session: MatcherSession) -> MatcherSession:
        """Take ownership of an existing session (shard rebalancing hook).

        The session object is registered as-is — buffers, features,
        decisions and cached scores move wholesale, so a rebalanced
        session's future behaviour is identical to an unmoved one.  The
        adopted session is placed at the most-recently-used end and the
        manager's quarantine log (if any) replaces the session's.

        Raises
        ------
        ValueError
            If a session with the same id is already registered.
        """
        if session.session_id in self._sessions:
            raise ValueError(f"session {session.session_id!r} already exists")
        session.quarantine = self.quarantine
        self._sessions[session.session_id] = session
        self._evict_overflow()
        return session

    def release(self, session_id: str) -> MatcherSession:
        """Remove and return a session **without** evicting it.

        Unlike :meth:`evict_idle` / LRU overflow, a release is a
        transfer of ownership (shard rebalancing): the ``on_evict``
        callback does not run and ``n_evicted`` does not change.

        Raises
        ------
        KeyError
            If the session does not exist.
        """
        return self._sessions.pop(session_id)

    def evict_idle(self, now: float) -> list[str]:
        """Drop sessions idle (in event time) longer than ``idle_timeout``.

        Args
        ----
        now:
            The current stream time; a session is idle when
            ``now - last_activity > idle_timeout``.

        Returns
        -------
        list[str]
            The evicted session ids.
        """
        if self.idle_timeout is None:
            return []
        victims = [
            session_id
            for session_id, session in self._sessions.items()
            if now - session.last_activity > self.idle_timeout
        ]
        for session_id in victims:
            self._drop(session_id)
        return victims

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def ingest_events(self, session_id: str, x, y, codes, t) -> None:
        """Route a column batch of mouse events to a session (LRU-touching)."""
        self._touch(session_id).ingest_events(x, y, codes, t)

    def add_decision(
        self, session_id: str, row: int, col: int, confidence: float, timestamp: float
    ) -> None:
        """Route one matching decision to a session (LRU-touching)."""
        self._touch(session_id).add_decision(row, col, confidence, timestamp)

    # ------------------------------------------------------------------ #
    # Characterization
    # ------------------------------------------------------------------ #

    def dirty_sessions(self) -> list[MatcherSession]:
        """Scoreable sessions whose behaviour changed since their last scores."""
        return [
            session
            for session in self._sessions.values()
            if session.dirty and session.scoreable
        ]

    def recharacterize(
        self,
        *,
        runtime: RuntimeSpec = None,
        chunk_size: Optional[int] = None,
        session_ids: Optional[Iterable[str]] = None,
        order: str = "lru",
        force: bool = False,
    ) -> BatchScores:
        """Score the dirty sessions in one service batch; clear their flags.

        Only sessions that changed since their last characterization (and
        have at least one decision) are re-extracted and re-scored — clean
        sessions keep their cached scores untouched.

        Args
        ----
        runtime:
            Per-call :class:`~repro.runtime.TaskRunner` override, forwarded
            to :meth:`CharacterizationService.score_batch`.  Scores are
            bitwise identical on every backend.
        chunk_size:
            Per-call extraction chunk override.
        session_ids:
            Restrict the pass to these sessions (still only the dirty,
            scoreable ones among them).
        order:
            Row order of the scoring batch: ``"lru"`` (default, the
            historical least-recently-updated-first order) or ``"id"``
            (sessions sorted by id).  ``"id"`` is the canonical order of
            the sharded serving layer — it is invariant under session
            placement, rebalancing and crash-restores, which is what
            makes a sharded fleet's batches bitwise comparable to this
            single-manager oracle.
        force:
            Score every scoreable session in the selection, dirty or
            not.  A forced pass puts the whole population through one
            classification batch, so two managers holding bitwise-equal
            session states produce bitwise-equal forced scores no matter
            how their earlier scoring batches were composed.

        Returns
        -------
        BatchScores
            The freshly computed scores, in the requested order (empty
            when nothing was dirty).
        """
        if order not in ("lru", "id"):
            raise ValueError(f"unknown recharacterize order {order!r}; expected 'lru' or 'id'")
        if force:
            pending = [s for s in self._sessions.values() if s.scoreable]
        else:
            pending = self.dirty_sessions()
        if session_ids is not None:
            wanted = set(session_ids)
            pending = [s for s in pending if s.session_id in wanted]
        if order == "id":
            pending.sort(key=lambda session: session.session_id)
        matchers = [session.matcher() for session in pending]
        scores = self.service.score_batch(
            matchers, runtime=runtime, chunk_size=chunk_size
        )
        for row, session in enumerate(pending):
            session.last_labels = scores.labels[row].copy()
            session.last_probabilities = scores.probabilities[row].copy()
            session.n_characterizations += 1
            session.dirty = False
        return scores

    def scores(self) -> dict[str, dict[str, np.ndarray]]:
        """Latest characterization per scored session (LRU order)."""
        return {
            session_id: {
                "labels": session.last_labels,
                "probabilities": session.last_probabilities,
            }
            for session_id, session in self._sessions.items()
            if session.last_labels is not None
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def reports(self) -> dict[str, dict]:
        """Live incremental-feature reports for every session (LRU order)."""
        return {
            session_id: session.report()
            for session_id, session in self._sessions.items()
        }

    def stats(self) -> dict:
        """Manager-level counters for monitoring."""
        sessions = self._sessions.values()
        return {
            "n_sessions": len(self._sessions),
            "n_dirty": sum(1 for s in sessions if s.dirty),
            "n_events": sum(len(s.buffer) for s in sessions),
            "n_decisions": sum(len(s.decisions) for s in sessions),
            "n_evicted": self.n_evicted,
            "max_sessions": self.max_sessions,
            "idle_timeout": self.idle_timeout,
            "reorder_window": self.reorder_window,
            "quarantined": (
                self.quarantine.counts() if self.quarantine is not None else None
            ),
        }

    def __repr__(self) -> str:
        return (
            f"SessionManager(sessions={len(self._sessions)}, "
            f"dirty={len(self.dirty_sessions())}, evicted={self.n_evicted})"
        )
