"""``python -m repro.stream`` entry point."""

from repro.stream.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
