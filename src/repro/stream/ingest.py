"""Append-friendly event ingestion over the columnar :class:`EventArray`.

:class:`StreamingEventBuffer` is the write side of the streaming session
layer.  Where :class:`~repro.matching.events.EventArray` is an immutable,
time-sorted snapshot, the buffer accepts events *as they arrive* — one at
a time or in column batches — into amortized-growth column arrays
(capacity doubles, so n appends cost O(n) total), and exposes the stream
back as zero-copy ``EventArray`` views.

Out-of-order arrival
--------------------
Real event transports deliver slightly out of order.  The buffer handles
this with a **bounded reorder window** (seconds), the standard streaming
watermark scheme:

* the *watermark* trails the maximum timestamp seen by ``reorder_window``
  seconds; an arriving event may be older than the newest event, but
  never older than the watermark (:class:`StreamOrderError` otherwise —
  dropping silently would break the equivalence contract);
* events newer than the watermark wait in a small *pending* region;
  whenever the watermark advances past them they are **committed** —
  merged into the sorted columns in stable ``(timestamp, arrival)``
  order, exactly the order ``EventArray`` gives the same events in one
  batch;
* committed events are final: nothing can arrive before them anymore, so
  incremental feature maintainers (:mod:`repro.stream.incremental`) can
  consume them exactly once via :meth:`StreamingEventBuffer.drain`.

With ``reorder_window=0`` (the default) timestamps must be non-decreasing
and every event commits immediately.

Equivalence contract
--------------------
At any point, ``committed() + pending`` replayed through a fresh
``EventArray`` equals :meth:`snapshot` — and after :meth:`flush`,
``snapshot()`` is bitwise-identical to ``EventArray`` built from all
events in arrival order, no matter how arrivals were chunked
(``tests/stream/test_stream_equivalence.py`` asserts this property over
random traces, chunkings, and in-window reorderings).
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.matching.events import EventArray, N_EVENT_TYPES

#: Initial capacity (events) of the growable committed region.
INITIAL_CAPACITY = 64


class StreamOrderError(ValueError):
    """An event arrived with a timestamp older than the reorder window allows."""


class _GrowableColumns:
    """Four parallel column arrays with amortized-doubling growth."""

    __slots__ = ("x", "y", "codes", "t", "size")

    def __init__(self, capacity: int = INITIAL_CAPACITY) -> None:
        capacity = max(int(capacity), 1)
        self.x = np.empty(capacity, dtype=np.float64)
        self.y = np.empty(capacity, dtype=np.float64)
        self.codes = np.empty(capacity, dtype=np.int64)
        self.t = np.empty(capacity, dtype=np.float64)
        self.size = 0

    @property
    def capacity(self) -> int:
        return self.t.size

    def _reserve(self, extra: int) -> None:
        needed = self.size + extra
        if needed <= self.capacity:
            return
        capacity = max(self.capacity, 1)
        while capacity < needed:
            capacity *= 2
        for name in ("x", "y", "codes", "t"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self.size] = old[: self.size]
            setattr(self, name, grown)

    def append_block(
        self, x: np.ndarray, y: np.ndarray, codes: np.ndarray, t: np.ndarray
    ) -> None:
        count = t.size
        self._reserve(count)
        end = self.size + count
        self.x[self.size : end] = x
        self.y[self.size : end] = y
        self.codes[self.size : end] = codes
        self.t[self.size : end] = t
        self.size = end

    def view(self, start: int = 0, end: Optional[int] = None) -> EventArray:
        """A zero-copy, read-only ``EventArray`` over ``[start, end)``."""
        end = self.size if end is None else end
        return EventArray(
            self.x[start:end], self.y[start:end],
            self.codes[start:end], self.t[start:end],
            assume_sorted=True, validate=False,
        )


class StreamingEventBuffer:
    """Incremental, append-friendly event stream with a bounded reorder window.

    Parameters
    ----------
    reorder_window:
        How far (seconds) behind the newest seen timestamp an arriving
        event may lag.  ``0`` demands non-decreasing timestamps.
    initial_capacity:
        Starting size of the committed column arrays.
    """

    def __init__(
        self,
        reorder_window: float = 0.0,
        initial_capacity: int = INITIAL_CAPACITY,
    ) -> None:
        if reorder_window < 0:
            raise ValueError("reorder_window must be non-negative")
        self.reorder_window = float(reorder_window)
        self._committed = _GrowableColumns(initial_capacity)
        # Pending events wait in a min-heap keyed on (timestamp, arrival
        # index): commits pop in stable (t, arrival) order in O(log n)
        # per event, and the unique arrival index breaks ties before the
        # payload fields are ever compared.
        self._pending: list[tuple[float, int, float, float, int]] = []
        self._max_t = -np.inf
        self._floor = -np.inf  # raised by flush(); commits below it are final
        self._arrivals = 0
        self._drained = 0  # committed prefix already handed to drain()
        # Duplicate tracking for extend_screened(): (t, x, y, code) keys of
        # events at or above the watermark.  Lazily seeded from snapshot()
        # on the first screened ingest (covers checkpoint restore), pruned
        # as the watermark advances.  None until screening is first used.
        self._recent: Optional[set[tuple[float, float, float, int]]] = None

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    @property
    def watermark(self) -> float:
        """Oldest timestamp still accepted; ``-inf`` before the first event.

        Normally trails the stream maximum by ``reorder_window``; a
        :meth:`flush` raises it to the flushed maximum permanently (the
        flush is a barrier — everything before it is final).
        """
        if not np.isfinite(self._max_t):
            return self._floor
        return max(self._max_t - self.reorder_window, self._floor)

    @property
    def max_timestamp(self) -> float:
        """Newest timestamp ingested so far (``-inf`` before the first event)."""
        return self._max_t

    def append(self, x: float, y: float, code: int, t: float) -> None:
        """Ingest a single event (scalar fast path of :meth:`extend`)."""
        t = float(t)
        if not np.isfinite(t):
            raise ValueError("timestamps must be finite")
        if t < 0:
            raise ValueError("timestamp must be non-negative")
        code = int(code)
        if not 0 <= code < N_EVENT_TYPES:
            raise ValueError(f"event codes must lie in [0, {N_EVENT_TYPES})")
        if t < self.watermark:
            raise StreamOrderError(
                f"event at t={t:.6f}s arrived {self._max_t - t:.6f}s behind the "
                f"stream maximum, outside the reorder window of "
                f"{self.reorder_window:.6f}s"
            )
        if self.reorder_window == 0.0:
            columns = self._committed
            columns._reserve(1)
            columns.x[columns.size] = x
            columns.y[columns.size] = y
            columns.codes[columns.size] = code
            columns.t[columns.size] = t
            columns.size += 1
            self._arrivals += 1
            if t > self._max_t:
                self._max_t = t
            return
        heapq.heappush(self._pending, (t, self._arrivals, float(x), float(y), code))
        self._arrivals += 1
        if t > self._max_t:
            self._max_t = t
        self._commit_ready()

    def extend(self, x, y, codes, t) -> None:
        """Ingest a column batch of events (arrival order = array order).

        Raises
        ------
        StreamOrderError
            If any event is older than the current watermark (including
            the watermark advanced by *earlier entries of this batch*).
        ValueError
            On non-finite/negative timestamps, unknown event codes, or
            ragged columns.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        codes = np.asarray(codes, dtype=np.int64).ravel()
        t = np.asarray(t, dtype=np.float64).ravel()
        if not (x.size == y.size == codes.size == t.size):
            raise ValueError("event columns must have equal lengths")
        if t.size == 0:
            return
        if not np.isfinite(t).all():
            raise ValueError("timestamps must be finite")
        if t.min() < 0:
            raise ValueError("timestamp must be non-negative")
        if codes.size and (codes.min() < 0 or codes.max() >= N_EVENT_TYPES):
            raise ValueError(f"event codes must lie in [0, {N_EVENT_TYPES})")
        # The watermark advances as the batch is scanned: an entry may not
        # be older than the window behind the newest entry before it.
        running_max = np.maximum.accumulate(t)
        running_max = np.maximum(running_max, self._max_t)
        lag = running_max - t
        if self.reorder_window == 0.0:
            late = t < running_max
        else:
            late = lag > self.reorder_window
        if np.isfinite(self._floor):
            late = late | (t < self._floor)
            lag = np.maximum(lag, self._floor - t)
        if late.any():
            index = int(np.argmax(late))
            raise StreamOrderError(
                f"event at t={t[index]:.6f}s arrived {lag[index]:.6f}s behind the "
                f"stream maximum, outside the reorder window of "
                f"{self.reorder_window:.6f}s"
            )
        if self.reorder_window == 0.0:
            # Fast path: a zero window admits only non-decreasing
            # timestamps (just validated), so the batch is already in
            # committed order — append it straight to the columns, no
            # pending region, no sort.
            self._committed.append_block(x, y, codes, t)
            self._arrivals += t.size
            self._max_t = float(running_max[-1])
            return
        for position in range(t.size):
            heapq.heappush(
                self._pending,
                (
                    float(t[position]), self._arrivals,
                    float(x[position]), float(y[position]), int(codes[position]),
                ),
            )
            self._arrivals += 1
        self._max_t = float(running_max[-1])
        self._commit_ready()

    def extend_array(self, events: EventArray) -> None:
        """Ingest every event of an :class:`EventArray` (already time-sorted)."""
        self.extend(events.x, events.y, events.codes, events.t)

    def extend_screened(self, x, y, codes, t, quarantine, session_id: str = "") -> int:
        """Ingest a batch, diverting rejectable events instead of raising.

        The fault-tolerant front-end of :meth:`extend`: each event is
        screened in arrival order — ``malformed`` (the strict path's
        ``ValueError`` cases), ``out_of_window`` (its
        :class:`StreamOrderError` cases) and ``duplicate`` (an exact
        ``(t, x, y, code)`` payload already accepted at or above the
        watermark) events are recorded in ``quarantine`` (a
        :class:`~repro.stream.quarantine.QuarantineLog`) with structured
        reasons; the survivors are handed to the strict :meth:`extend`
        unchanged, so the committed stream is bitwise identical to a
        clean run ingesting only the survivors.

        Ragged columns are still a structural (caller) error and raise
        ``ValueError`` — screening is per event, not per batch.

        Returns
        -------
        int
            The number of surviving (ingested) events.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        codes = np.asarray(codes, dtype=np.int64).ravel()
        t = np.asarray(t, dtype=np.float64).ravel()
        if not (x.size == y.size == codes.size == t.size):
            raise ValueError("event columns must have equal lengths")
        if t.size == 0:
            return 0
        if self._recent is None:
            watermark = self.watermark
            snapshot = self.snapshot()
            keep = snapshot.t >= watermark
            self._recent = {
                (
                    float(snapshot.t[index]), float(snapshot.x[index]),
                    float(snapshot.y[index]), int(snapshot.codes[index]),
                )
                for index in np.flatnonzero(keep)
            }
        survivors: list[int] = []
        running_max = self._max_t
        for position in range(t.size):
            t_i = float(t[position])
            code_i = int(codes[position])
            if not np.isfinite(t_i) or t_i < 0 or not 0 <= code_i < N_EVENT_TYPES:
                quarantine.add(
                    session_id=session_id, reason="malformed",
                    detail=(
                        f"timestamp {t_i!r} must be finite and non-negative"
                        if not (np.isfinite(t_i) and t_i >= 0)
                        else f"event code {code_i} outside [0, {N_EVENT_TYPES})"
                    ),
                    x=float(x[position]), y=float(y[position]),
                    code=code_i, t=t_i,
                )
                continue
            new_max = max(running_max, t_i)
            if self.reorder_window == 0.0:
                late = t_i < new_max
            else:
                late = (new_max - t_i) > self.reorder_window
            if late or (np.isfinite(self._floor) and t_i < self._floor):
                quarantine.add(
                    session_id=session_id, reason="out_of_window",
                    detail=(
                        f"t={t_i:.6f}s is {new_max - t_i:.6f}s behind the stream "
                        f"maximum (window {self.reorder_window:.6f}s)"
                    ),
                    x=float(x[position]), y=float(y[position]),
                    code=code_i, t=t_i,
                )
                continue
            key = (t_i, float(x[position]), float(y[position]), code_i)
            if key in self._recent:
                quarantine.add(
                    session_id=session_id, reason="duplicate",
                    detail=f"exact payload re-delivered at t={t_i:.6f}s",
                    x=key[1], y=key[2], code=code_i, t=t_i,
                )
                continue
            self._recent.add(key)
            survivors.append(position)
            running_max = new_max
        if survivors:
            index = np.asarray(survivors, dtype=np.intp)
            self.extend(x[index], y[index], codes[index], t[index])
        watermark = self.watermark
        if np.isfinite(watermark):
            self._recent = {key for key in self._recent if key[0] >= watermark}
        return len(survivors)

    def _commit_ready(self) -> None:
        """Move pending events at or below the watermark into the columns.

        Heap pops deliver the stable ``(timestamp, arrival)`` order — the
        order a one-shot ``EventArray`` stable sort gives the same
        events — and the O(1) head check makes the no-commit case free.
        """
        if not self._pending or self._pending[0][0] > self.watermark:
            return
        watermark = self.watermark
        ready = []
        while self._pending and self._pending[0][0] <= watermark:
            ready.append(heapq.heappop(self._pending))
        self._committed.append_block(
            np.array([entry[2] for entry in ready], dtype=np.float64),
            np.array([entry[3] for entry in ready], dtype=np.float64),
            np.array([entry[4] for entry in ready], dtype=np.int64),
            np.array([entry[0] for entry in ready], dtype=np.float64),
        )

    def flush(self) -> None:
        """Commit every pending event (end of stream / forced barrier).

        The flush raises the watermark to the stream maximum permanently:
        the flushed events are final, so events older than the flushed
        maximum are rejected from then on, reorder window or not.
        """
        if np.isfinite(self._max_t):
            self._floor = max(self._floor, self._max_t)
        self._commit_ready()

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #

    @property
    def n_committed(self) -> int:
        return self._committed.size

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    def __len__(self) -> int:
        return self.n_committed + self.n_pending

    def committed(self) -> EventArray:
        """Zero-copy view of the committed (final, time-sorted) region."""
        return self._committed.view()

    def drain(self) -> EventArray:
        """Events committed since the previous :meth:`drain` (exactly once).

        The incremental maintainers consume this: each committed event is
        delivered exactly once, in committed (stable time-sorted) order.
        """
        view = self._committed.view(self._drained)
        self._drained = self._committed.size
        return view

    def window(self, start: float, end: float) -> EventArray:
        """Committed events in ``[start, end]`` (``searchsorted`` slice)."""
        return self.committed().slice_between(start, end)

    def snapshot(self) -> EventArray:
        """All events — committed plus pending — as one sorted store.

        Bitwise-identical to ``EventArray`` built from every ingested
        event in arrival order (pending events are merged in stable
        ``(timestamp, arrival)`` order without being committed).
        """
        if not self._pending:
            return self.committed()
        # Tuples sort by (t, arrival); the unique arrival index settles
        # ties before any payload field is compared.
        pending = sorted(self._pending)
        committed = self._committed
        return EventArray(
            np.concatenate(
                [committed.x[: committed.size], [entry[2] for entry in pending]]
            ),
            np.concatenate(
                [committed.y[: committed.size], [entry[3] for entry in pending]]
            ),
            np.concatenate(
                [committed.codes[: committed.size],
                 np.array([entry[4] for entry in pending], dtype=np.int64)]
            ),
            np.concatenate(
                [committed.t[: committed.size], [entry[0] for entry in pending]]
            ),
            assume_sorted=False, validate=False,
        )

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #

    def state(self) -> dict[str, np.ndarray]:
        """The buffer's exact state as flat arrays (see ``checkpoint.py``).

        Pending events are stored in canonical ``(t, arrival)`` order, so
        the checkpoint bytes are independent of the heap's internal
        layout (a sorted list is itself a valid min-heap on restore).
        """
        pending = sorted(self._pending)
        return {
            "committed_x": self._committed.x[: self._committed.size].copy(),
            "committed_y": self._committed.y[: self._committed.size].copy(),
            "committed_codes": self._committed.codes[: self._committed.size].copy(),
            "committed_t": self._committed.t[: self._committed.size].copy(),
            "pending_x": np.array([entry[2] for entry in pending], dtype=np.float64),
            "pending_y": np.array([entry[3] for entry in pending], dtype=np.float64),
            "pending_codes": np.array([entry[4] for entry in pending], dtype=np.int64),
            "pending_t": np.array([entry[0] for entry in pending], dtype=np.float64),
            "pending_seq": np.array([entry[1] for entry in pending], dtype=np.int64),
            "scalars": np.array(
                [self.reorder_window, self._max_t, self._arrivals, self._drained,
                 self._floor],
                dtype=np.float64,
            ),
        }

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "StreamingEventBuffer":
        """Rebuild a buffer whose future behaviour is identical to the saved one."""
        reorder_window, max_t, arrivals, drained, floor = (
            float(value) for value in state["scalars"]
        )
        buffer = cls(
            reorder_window=reorder_window,
            initial_capacity=max(int(state["committed_t"].size), 1),
        )
        buffer._committed.append_block(
            np.asarray(state["committed_x"], dtype=np.float64),
            np.asarray(state["committed_y"], dtype=np.float64),
            np.asarray(state["committed_codes"], dtype=np.int64),
            np.asarray(state["committed_t"], dtype=np.float64),
        )
        buffer._pending = [
            (
                float(state["pending_t"][index]),
                int(state["pending_seq"][index]),
                float(state["pending_x"][index]),
                float(state["pending_y"][index]),
                int(state["pending_codes"][index]),
            )
            for index in range(state["pending_t"].size)
        ]
        heapq.heapify(buffer._pending)
        buffer._max_t = max_t
        buffer._floor = floor
        buffer._arrivals = int(arrivals)
        buffer._drained = int(drained)
        return buffer

    def __repr__(self) -> str:
        return (
            f"StreamingEventBuffer(committed={self.n_committed}, "
            f"pending={self.n_pending}, reorder_window={self.reorder_window})"
        )
