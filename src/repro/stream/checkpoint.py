"""Session-state checkpoints: snapshot/restore a whole :class:`SessionManager`.

A checkpoint follows the serve artifact format conventions
(:mod:`repro.serve.artifacts`): a directory bundle holding

* ``manifest.json`` — format name/version, the producing ``repro``
  version, a keyless blake2b **content fingerprint** over the arrays,
  session counters, and (when the service was loaded from a bundle) the
  model bundle's fingerprint: loading against a *different* bundle
  fingerprint is refused, and loading into an in-memory service (which
  has no fingerprint to verify) warns instead of proceeding silently;
* the session arrays — every session's exact state as flat arrays: the
  event buffer (committed and pending columns, arrival sequence numbers,
  watermark scalars), the incremental feature maintainers (heat-map
  grid, type counts, motion-statistics vector), the decision history,
  the dirty flag and the latest scores.  Ragged per-session data uses
  the concatenated-arrays-plus-offsets encoding of
  :mod:`repro.serve.population`.  Arrays are written through the shared
  :mod:`repro.io.bundle` codec: format version 2 defaults to the
  memory-mappable ``mmap-dir`` layout (restores load columns with
  ``np.load(mmap_mode="r")`` and copy only what sessions own), while
  format-version-1 checkpoints (a single compressed ``arrays.npz``)
  remain fully readable.

Restore rebuilds sessions whose future behaviour is *identical* to the
saved ones: ``tests/stream/test_checkpoint.py`` asserts that
checkpoint → restore → continue produces bitwise-identical final scores
to an uninterrupted run.  Corruption (truncated arrays, tampered bytes,
missing keys, wrong format version) raises :class:`CheckpointError`
instead of resuming wrong state.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import warnings
from pathlib import Path
from typing import Optional, Union

import numpy as np

import repro
from repro import obs
from repro.core.expert_model import EXPERT_CHARACTERISTICS
from repro.io.bundle import (
    BundleLayout,
    arrays_fingerprint,
    atomic_bundle_dir,
    fsync_dir,
    read_arrays,
    read_bundle_manifest,
    write_arrays,
)
from repro.runtime.faults import ReproRuntimeWarning, active_injector
from repro.matching.events import N_EVENT_TYPES
from repro.matching.history import Decision
from repro.matching.mouse import MovementMap
from repro.serve.artifacts import ArtifactError
from repro.serve.service import CharacterizationService
from repro.stream.incremental import IncrementalMotionStats, SESSION_HEAT_SHAPE
from repro.stream.ingest import StreamingEventBuffer
from repro.stream.session import MatcherSession, SessionManager

#: Checkpoint format identifier written into every manifest.
CHECKPOINT_FORMAT = "repro-stream-checkpoint"

#: Current checkpoint format version (2 = shared-codec layouts; 1 = the
#: historical compressed ``arrays.npz``).
CHECKPOINT_FORMAT_VERSION = 2

#: Format versions load_checkpoint / read_checkpoint_manifest accept.
SUPPORTED_CHECKPOINT_VERSIONS = (1, 2)

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

#: Buffer column groups persisted per session (matching
#: ``StreamingEventBuffer.state()`` keys).
_BUFFER_KEYS = (
    "committed_x", "committed_y", "committed_codes", "committed_t",
    "pending_x", "pending_y", "pending_codes", "pending_t", "pending_seq",
)

#: Width of the ``IncrementalMotionStats.state()`` vector.
_MOTION_STATE_WIDTH = 18

#: Number of expert characteristics in the stored score rows.
_N_LABELS = len(EXPERT_CHARACTERISTICS)


class CheckpointError(ArtifactError):
    """Raised when a checkpoint cannot be written or restored."""


def _ragged(chunks: list[np.ndarray], dtype) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-session chunks and return (flat, offsets)."""
    offsets = np.zeros(len(chunks) + 1, dtype=np.int64)
    for index, chunk in enumerate(chunks):
        offsets[index + 1] = offsets[index] + chunk.size
    if chunks:
        flat = np.concatenate([np.asarray(c, dtype=dtype) for c in chunks])
    else:
        flat = np.zeros(0, dtype=dtype)
    return flat.astype(dtype, copy=False), offsets


def save_checkpoint(
    manager: SessionManager,
    path,
    *,
    layout: Union[str, BundleLayout] = BundleLayout.MMAP_DIR,
    workload: Optional[dict] = None,
) -> Path:
    """Write the manager's complete session state as a checkpoint bundle.

    The scoring model itself is **not** stored (persist it once with
    :func:`repro.serve.save_model`); the manifest records the model
    bundle's fingerprint when the service was loaded from one, and
    :func:`load_checkpoint` refuses to resume against a different model.

    Args
    ----
    manager:
        The session manager to snapshot.
    path:
        Checkpoint bundle directory to create.
    layout:
        On-disk array layout (:class:`~repro.io.bundle.BundleLayout` or
        its string value); the default ``mmap-dir`` restores via
        memory-mapped columns, ``npz-compressed`` reproduces the smaller
        format-version-1 payload.  The content fingerprint is
        layout-independent.
    workload:
        Optional provenance of the ingested workload (adapter
        ``source``, ``fingerprint``, ``trace_version``); recorded
        verbatim in the manifest so a later ``--resume`` can detect
        that it is being replayed against a different trace.

    Returns
    -------
    pathlib.Path
        The checkpoint bundle directory.
    """
    sessions = [manager.session(session_id) for session_id in manager.session_ids()]
    arrays: dict[str, np.ndarray] = {}

    buffer_chunks: dict[str, list[np.ndarray]] = {key: [] for key in _BUFFER_KEYS}
    buffer_scalars: list[np.ndarray] = []
    decision_chunks: list[np.ndarray] = []
    heat_grids = np.zeros((len(sessions), *SESSION_HEAT_SHAPE), dtype=np.float64)
    type_counts = np.zeros((len(sessions), N_EVENT_TYPES), dtype=np.int64)
    motion_states = np.zeros((len(sessions), _MOTION_STATE_WIDTH), dtype=np.float64)
    shapes = np.zeros((len(sessions), 2), dtype=np.int64)
    screens = np.zeros((len(sessions), 2), dtype=np.int64)
    flags = np.zeros((len(sessions), 3), dtype=np.float64)  # dirty, scored, n_char
    activity = np.zeros(len(sessions), dtype=np.float64)
    labels = np.zeros((len(sessions), _N_LABELS), dtype=np.int64)
    probabilities = np.zeros((len(sessions), _N_LABELS), dtype=np.float64)

    for index, session in enumerate(sessions):
        state = session.buffer.state()
        for key in _BUFFER_KEYS:
            buffer_chunks[key].append(state[key])
        buffer_scalars.append(state["scalars"])
        decision_chunks.append(
            np.array(
                [(d.row, d.col, d.confidence, d.timestamp) for d in session.decisions],
                dtype=np.float64,
            ).reshape(-1, 4)
        )
        heat_grids[index] = session.features.heat.counts
        type_counts[index] = session.features.type_counts.counts
        motion_states[index] = session.features.motion.state()
        shapes[index] = session.shape
        screens[index] = session.screen
        flags[index, 0] = 1.0 if session.dirty else 0.0
        flags[index, 1] = 1.0 if session.last_labels is not None else 0.0
        flags[index, 2] = session.n_characterizations
        activity[index] = session.last_activity
        if session.last_labels is not None:
            labels[index] = session.last_labels
            probabilities[index] = session.last_probabilities

    for key in _BUFFER_KEYS:
        dtype = np.int64 if key in ("committed_codes", "pending_codes", "pending_seq") else np.float64
        flat, offsets = _ragged(buffer_chunks[key], dtype)
        arrays[key] = flat
        arrays[f"{key}_offsets"] = offsets
    decisions_flat, decision_offsets = _ragged(
        [chunk.ravel() for chunk in decision_chunks], np.float64
    )
    arrays["decisions"] = decisions_flat
    arrays["decision_offsets"] = decision_offsets
    arrays["buffer_scalars"] = (
        np.vstack(buffer_scalars) if buffer_scalars else np.zeros((0, 5))
    )
    arrays["ids"] = np.array(
        [session.session_id for session in sessions], dtype=np.str_
    )
    arrays["heat_grids"] = heat_grids
    arrays["type_counts"] = type_counts
    arrays["motion_states"] = motion_states
    arrays["shapes"] = shapes
    arrays["screens"] = screens
    arrays["flags"] = flags
    arrays["activity"] = activity
    arrays["labels"] = labels
    arrays["probabilities"] = probabilities

    bundle = Path(path)
    injector = active_injector()
    with atomic_bundle_dir(bundle, error=CheckpointError) as staging:
        info = write_arrays(staging, arrays, layout=layout, error=CheckpointError)
        bundle_info = getattr(manager.service, "_bundle_info", None) or {}
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "repro_version": repro.__version__,
            "n_sessions": len(sessions),
            "n_evicted": manager.n_evicted,
            "manager": {
                "max_sessions": manager.max_sessions,
                "idle_timeout": manager.idle_timeout,
                "reorder_window": manager.reorder_window,
                "screen": list(manager.screen),
            },
            "arrays": info,
            "model_fingerprint": bundle_info.get("fingerprint"),
            "fingerprint": arrays_fingerprint(arrays),
        }
        if workload is not None:
            manifest["workload"] = dict(workload)
        (staging / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        # The checkpoint.write seam fires after the staging tree is fully
        # written but before publication — the injected crash a torn
        # write would have been.  The atomic context discards the staging
        # dir, so the previous checkpoint (if any) stays intact.
        if injector is not None:
            injector.check(
                "checkpoint.write", key=bundle.name,
                message=(
                    f"injected crash while writing checkpoint {bundle.name!r} "
                    "(before the publishing rename)"
                ),
            )
    return bundle


def read_checkpoint_manifest(path) -> dict:
    """Read and structurally validate a checkpoint's ``manifest.json``.

    Raises
    ------
    CheckpointError
        If the bundle or manifest is missing/unreadable, of the wrong
        format name, or an unsupported format version.
    """
    return read_bundle_manifest(
        path,
        format_name=CHECKPOINT_FORMAT,
        supported_versions=SUPPORTED_CHECKPOINT_VERSIONS,
        kind="checkpoint",
        manifest_name=MANIFEST_NAME,
        error=CheckpointError,
    )


def load_checkpoint(
    path,
    service: CharacterizationService,
    *,
    on_evict=None,
    quarantine=None,
) -> SessionManager:
    """Restore a :class:`SessionManager` from a checkpoint bundle.

    Args
    ----
    path:
        The checkpoint bundle directory.
    service:
        The scoring service to attach.  When both the checkpoint and the
        service carry a model-bundle fingerprint they must match.
    on_evict:
        Eviction callback for the restored manager (callbacks are not
        serializable, so they are re-attached explicitly).
    quarantine:
        A :class:`~repro.stream.quarantine.QuarantineLog` to attach to
        the restored manager and sessions (logs are runtime state, not
        checkpoint payload — counters restart with the new log).

    Raises
    ------
    CheckpointError
        On missing/corrupt bundles, fingerprint mismatches (content or
        model), or unsupported versions.
    """
    bundle = Path(path)
    injector = active_injector()
    if injector is not None and injector.fires("checkpoint.read", key=bundle.name):
        raise CheckpointError(
            f"injected read failure for checkpoint {bundle.name!r} "
            "(fault seam 'checkpoint.read')"
        )
    manifest = read_checkpoint_manifest(bundle)

    # Version-2 manifests carry the layout entry; version-1 checkpoints
    # (no entry) fall back to the historical arrays.npz.  The mmap-dir
    # layout restores through read-only file-backed views — every
    # session-owned buffer below copies out of them, so the restored
    # manager never aliases the checkpoint files.
    info = manifest.get("arrays")
    arrays = read_arrays(
        bundle,
        info if isinstance(info, dict) else None,
        mmap=True,
        error=CheckpointError,
    )

    actual = arrays_fingerprint(arrays)
    if actual != manifest.get("fingerprint"):
        raise CheckpointError(
            f"checkpoint {bundle} failed content-fingerprint verification "
            f"(expected {manifest.get('fingerprint')!r}, computed {actual!r}); "
            "the bundle is corrupt or was modified"
        )

    saved_model = manifest.get("model_fingerprint")
    bundle_info = getattr(service, "_bundle_info", None) or {}
    serving_model = bundle_info.get("fingerprint")
    if saved_model and serving_model and saved_model != serving_model:
        raise CheckpointError(
            f"checkpoint {bundle} was taken against model fingerprint "
            f"{saved_model!r}, but the service serves {serving_model!r}; "
            "resume with the matching model bundle"
        )
    if saved_model and not serving_model:
        # An in-memory service carries no fingerprint, so the binding
        # cannot be verified — resume proceeds, but not silently.
        warnings.warn(
            ReproRuntimeWarning(
                f"checkpoint {bundle} is bound to model fingerprint {saved_model!r}, "
                "but the service has no bundle fingerprint to verify against "
                "(in-memory model); scores may differ from the original run"
            ),
            stacklevel=2,
        )

    settings = manifest.get("manager", {})
    manager = SessionManager(
        service,
        max_sessions=settings.get("max_sessions"),
        idle_timeout=settings.get("idle_timeout"),
        reorder_window=float(settings.get("reorder_window", 0.0)),
        screen=tuple(settings.get("screen", MovementMap.DEFAULT_SCREEN)),
        on_evict=on_evict,
        quarantine=quarantine,
    )
    manager.n_evicted = int(manifest.get("n_evicted", 0))

    n_sessions = int(manifest.get("n_sessions", 0))
    required = [
        "ids", "buffer_scalars", "decisions", "decision_offsets", "heat_grids",
        "type_counts", "motion_states", "shapes", "screens", "flags",
        "activity", "labels", "probabilities",
    ]
    required += [key for name in _BUFFER_KEYS for key in (name, f"{name}_offsets")]
    missing = [key for key in required if key not in arrays]
    if missing:
        raise CheckpointError(f"checkpoint {bundle} is missing arrays {missing}")
    if arrays["ids"].shape[0] != n_sessions:
        raise CheckpointError(
            f"checkpoint {bundle} declares {n_sessions} sessions but stores "
            f"{arrays['ids'].shape[0]}"
        )

    for index in range(n_sessions):
        shape = (int(arrays["shapes"][index, 0]), int(arrays["shapes"][index, 1]))
        screen = (int(arrays["screens"][index, 0]), int(arrays["screens"][index, 1]))
        session = MatcherSession(
            str(arrays["ids"][index]), shape, screen=screen,
            reorder_window=manager.reorder_window,
            quarantine=quarantine,
        )

        state = {"scalars": arrays["buffer_scalars"][index]}
        for key in _BUFFER_KEYS:
            offsets = arrays[f"{key}_offsets"]
            state[key] = arrays[key][int(offsets[index]) : int(offsets[index + 1])]
        session.buffer = StreamingEventBuffer.from_state(state)

        session.features.heat.counts = arrays["heat_grids"][index].copy()
        session.features.type_counts.counts = arrays["type_counts"][index].copy()
        session.features.motion = IncrementalMotionStats.from_state(
            arrays["motion_states"][index]
        )

        start = int(arrays["decision_offsets"][index])
        end = int(arrays["decision_offsets"][index + 1])
        rows = arrays["decisions"][start:end].reshape(-1, 4)
        session.decisions = [
            Decision(
                row=int(entry[0]), col=int(entry[1]),
                confidence=float(entry[2]), timestamp=float(entry[3]),
            )
            for entry in rows
        ]

        session.dirty = bool(arrays["flags"][index, 0])
        session.n_characterizations = int(arrays["flags"][index, 2])
        session.last_activity = float(arrays["activity"][index])
        if arrays["flags"][index, 1]:
            session.last_labels = arrays["labels"][index].copy()
            session.last_probabilities = arrays["probabilities"][index].copy()

        manager._sessions[session.session_id] = session
    return manager


# --------------------------------------------------------------------- #
# Retained checkpoint store
# --------------------------------------------------------------------- #

#: Name of the pointer file recording the last fully published checkpoint.
LATEST_GOOD_NAME = "latest-good"

#: Prefix of numbered checkpoint directories inside a store.
_CHECKPOINT_PREFIX = "ckpt-"


class CheckpointStore:
    """N-deep retention of atomic checkpoints with a ``latest-good`` pointer.

    A store is a directory of numbered checkpoint bundles
    (``ckpt-000001``, ``ckpt-000002``, …) plus a ``latest-good`` pointer
    file naming the last fully published one.  :meth:`save` writes each
    checkpoint through the atomic protocol (stage + fsync + rename),
    updates the pointer with ``os.replace`` and prunes beyond the
    retention depth — so the pointer never names a torn bundle.
    :meth:`restore` starts at the pointer and falls back, newest first,
    to the newest checkpoint that passes fingerprint verification,
    warning (:class:`~repro.runtime.faults.ReproRuntimeWarning`) about
    each one it skips.

    Parameters
    ----------
    root:
        The store directory (created if missing).
    keep:
        Retention depth; older checkpoints are pruned after each save.
    """

    def __init__(self, root, *, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.root = Path(root)
        self.keep = int(keep)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- listing ------------------------------------------------------- #

    def checkpoints(self) -> list[Path]:
        """Checkpoint directories present in the store, oldest first."""
        return sorted(
            entry
            for entry in self.root.iterdir()
            if entry.is_dir() and entry.name.startswith(_CHECKPOINT_PREFIX)
        )

    def latest_good(self) -> Optional[Path]:
        """The checkpoint named by the pointer (``None`` when unset/stale)."""
        pointer = self.root / LATEST_GOOD_NAME
        try:
            name = pointer.read_text().strip()
        except OSError:
            return None
        candidate = self.root / name
        return candidate if name and candidate.is_dir() else None

    def _next_name(self) -> str:
        existing = self.checkpoints()
        if not existing:
            return f"{_CHECKPOINT_PREFIX}000001"
        newest = existing[-1].name[len(_CHECKPOINT_PREFIX):]
        number = int(newest) + 1 if newest.isdigit() else len(existing) + 1
        return f"{_CHECKPOINT_PREFIX}{number:06d}"

    # -- writing ------------------------------------------------------- #

    def save(
        self,
        manager: SessionManager,
        *,
        layout: Union[str, BundleLayout] = BundleLayout.MMAP_DIR,
    ) -> Path:
        """Atomically write the next checkpoint, advance the pointer, prune.

        A failed write (crash or injected ``checkpoint.write`` fault)
        leaves the store exactly as it was: no new directory, pointer
        untouched.
        """
        started = time.perf_counter()
        bundle = self.root / self._next_name()
        with obs.trace_span("checkpoint.save", bundle=bundle.name):
            save_checkpoint(manager, bundle, layout=layout)
            pointer = self.root / LATEST_GOOD_NAME
            staged = self.root / f".{LATEST_GOOD_NAME}.tmp.{os.getpid()}"
            staged.write_text(bundle.name + "\n")
            with open(staged, "rb") as handle:
                os.fsync(handle.fileno())
            os.replace(staged, pointer)
            fsync_dir(self.root)
            self.prune()
        if obs.obs_enabled():
            obs.histogram(
                "repro_checkpoint_save_seconds",
                "Checkpoint publish wall-clock (write + pointer + prune).",
            ).observe(time.perf_counter() - started)
            obs.counter("repro_checkpoint_saves_total", "Checkpoints published.").inc()
        return bundle

    def prune(self) -> list[Path]:
        """Drop checkpoints beyond the retention depth (never the pointee)."""
        keep_names = {entry.name for entry in self.checkpoints()[-self.keep:]}
        pointee = self.latest_good()
        if pointee is not None:
            keep_names.add(pointee.name)
        removed = []
        for entry in self.checkpoints():
            if entry.name not in keep_names:
                shutil.rmtree(entry, ignore_errors=True)
                removed.append(entry)
        return removed

    # -- restoring ----------------------------------------------------- #

    def restore(
        self,
        service: CharacterizationService,
        *,
        on_evict=None,
        quarantine=None,
    ) -> SessionManager:
        """Restore from the newest verifiable checkpoint.

        Tries the ``latest-good`` pointee first, then every remaining
        checkpoint newest-to-oldest.  A candidate that fails to load —
        torn bundle, corrupt arrays, fingerprint mismatch, injected
        ``checkpoint.read`` fault — is skipped with a
        :class:`~repro.runtime.faults.ReproRuntimeWarning`; the first
        one that verifies wins.

        Raises
        ------
        CheckpointError
            When the store holds no loadable checkpoint at all.
        """
        candidates: list[Path] = []
        pointee = self.latest_good()
        if pointee is not None:
            candidates.append(pointee)
        for entry in reversed(self.checkpoints()):
            if pointee is None or entry.name != pointee.name:
                candidates.append(entry)
        if not candidates:
            raise CheckpointError(f"checkpoint store {self.root} is empty")
        started = time.perf_counter()
        failures: list[str] = []
        for candidate in candidates:
            try:
                with obs.trace_span("checkpoint.restore", bundle=candidate.name):
                    manager = load_checkpoint(
                        candidate, service, on_evict=on_evict, quarantine=quarantine
                    )
            except CheckpointError as error:
                failures.append(f"{candidate.name}: {error}")
                if obs.obs_enabled():
                    obs.counter(
                        "repro_checkpoint_fallbacks_total",
                        "Unrestorable checkpoints skipped during restore.",
                    ).inc()
                warnings.warn(
                    ReproRuntimeWarning(
                        f"checkpoint {candidate.name!r} is not restorable "
                        f"({error}); falling back to the previous checkpoint"
                    ),
                    stacklevel=2,
                )
                continue
            if obs.obs_enabled():
                obs.histogram(
                    "repro_checkpoint_restore_seconds",
                    "Checkpoint restore wall-clock (including skipped candidates).",
                ).observe(time.perf_counter() - started)
            return manager
        summary = "; ".join(failures)
        raise CheckpointError(
            f"no restorable checkpoint in {self.root} "
            f"({len(failures)} candidate(s) failed: {summary})"
        )

    def __repr__(self) -> str:
        pointee = self.latest_good()
        return (
            f"CheckpointStore(root={str(self.root)!r}, "
            f"checkpoints={len(self.checkpoints())}, keep={self.keep}, "
            f"latest_good={pointee.name if pointee else None!r})"
        )
