"""``python -m repro.stream`` — replay simulated traces as a live workload.

Two sub-commands:

``replay``
    Simulate an archetype-cycled matcher cohort (the mouse-simulation
    personas), then feed every trace — mouse events and matching
    decisions alike — through a :class:`~repro.stream.SessionManager` in
    global event-time order, step by step, re-characterizing the dirty
    sessions at a fixed cadence and reporting **scores over time**.
    Optionally snapshots the final session state as a checkpoint bundle
    (``--checkpoint``), or resumes a previous one (``--resume``) and
    replays only the not-yet-ingested remainder of each trace —
    producing the same final scores as an uninterrupted run.

    Instead of simulating, ``--input FORMAT:PATH`` replays an external
    trace file through a registered ingestion adapter
    (:mod:`repro.adapters`): rows are schema-validated at parse time
    and bad ones diverted to a quarantine log under the ``--recovery``
    policy (``skip``/``repair``/``abort``).  A decisions-only file
    (e.g. the ``oaei`` format) can be merged in with
    ``--decisions-input``.  The checkpoint manifest records the
    workload's source, fingerprint, and trace version, and resuming
    against a *different* trace warns.
``inspect``
    Print a checkpoint bundle's manifest without loading its arrays.

Examples (run with ``PYTHONPATH=src``):

.. code-block:: bash

    python -m repro.stream replay --scale tiny --steps 8 --report-every 2
    python -m repro.stream replay --scale tiny --checkpoint /tmp/ckpt
    python -m repro.stream replay --scale tiny --resume /tmp/ckpt
    python -m repro.stream replay --input jsonl:trace.jsonl --recovery skip
    python -m repro.stream inspect --checkpoint /tmp/ckpt
"""

from __future__ import annotations

import argparse
import json
import warnings
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.core.characterizer import MExICharacterizer, MExIVariant
from repro.core.expert_model import EXPERT_CHARACTERISTICS, characterize_population, labels_matrix
from repro.core.features.cache import FeatureBlockCache
from repro.experiments.config import SCALE_NAMES, ExperimentConfig
from repro.matching.matcher import HumanMatcher
from repro.runtime.faults import ReproRuntimeWarning
from repro.serve.service import DEFAULT_CHUNK_SIZE, CharacterizationService
from repro.simulation.archetypes import Archetype
from repro.simulation.dataset import build_dataset
from repro.simulation.population import simulate_population
from repro.simulation.schemas import build_po_task
from repro.stream.checkpoint import load_checkpoint, read_checkpoint_manifest, save_checkpoint
from repro.stream.session import SessionManager

#: Archetype cycle the replay cohort is drawn from (the paper's personas).
REPLAY_ARCHETYPES = (Archetype.A, Archetype.B, Archetype.C, Archetype.D)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream",
        description="Replay simulated matcher traces as a live streaming workload.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    replay = commands.add_parser("replay", help="stream a simulated cohort and report scores over time")
    replay.add_argument("--bundle", default=None, metavar="DIR", help="model bundle to serve (default: fit an offline-feature model in process)")
    replay.add_argument("--scale", choices=SCALE_NAMES, default="tiny", help="training-cohort/model scale")
    replay.add_argument("--seed", type=int, default=42, help="master random seed")
    replay.add_argument("--sessions", type=int, default=8, help="number of concurrent live sessions (ignored with --input)")
    replay.add_argument("--input", default=None, metavar="FORMAT:PATH", help="replay an external trace file through an ingestion adapter (e.g. jsonl:trace.jsonl) instead of simulating")
    replay.add_argument("--decisions-input", default=None, metavar="FORMAT:PATH", help="merge a decisions-only trace file (e.g. oaei:align.csv) into the --input workload")
    replay.add_argument("--recovery", choices=("skip", "repair", "abort"), default="skip", help="what to do with rows that fail adapter validation (default: quarantine and skip)")
    replay.add_argument("--clock-skew", type=float, default=1.0, metavar="SECONDS", help="per-session backwards-timestamp tolerance during adapter ingest")
    replay.add_argument("--steps", type=int, default=8, help="replay time steps")
    replay.add_argument("--stop-after", type=int, default=None, metavar="N", help="halt the replay after step N (checkpoint it, resume later with the same --steps)")
    replay.add_argument("--report-every", type=int, default=2, metavar="K", help="re-characterize the dirty sessions every K steps")
    replay.add_argument("--runtime", default=None, metavar="BACKEND[:N]", help="TaskRunner backend for re-characterization (serial, thread[:N], process[:N])")
    replay.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE, help="matchers per scoring task")
    replay.add_argument("--reorder-window", type=float, default=0.0, help="per-session out-of-order tolerance (seconds)")
    replay.add_argument("--max-sessions", type=int, default=None, help="LRU capacity of the session manager")
    replay.add_argument("--idle-timeout", type=float, default=None, help="evict sessions idle longer than this (event-time seconds)")
    replay.add_argument("--checkpoint", default=None, metavar="DIR", help="write the final session state as a checkpoint bundle")
    replay.add_argument("--resume", default=None, metavar="DIR", help="restore session state from a checkpoint and continue the replay")
    replay.add_argument("--journal", default=None, metavar="PATH", help="append spans and a final metrics snapshot to a JSONL run journal (see python -m repro.obs report)")
    replay.add_argument("--format", choices=("table", "json"), default="table", help="output format")

    inspect = commands.add_parser("inspect", help="print a checkpoint bundle's metadata")
    inspect.add_argument("--checkpoint", required=True, metavar="DIR", help="checkpoint bundle directory")
    return parser


def build_service(
    bundle: Optional[str] = None,
    *,
    scale: str = "tiny",
    seed: int = 42,
    runtime=None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> CharacterizationService:
    """Load a bundle, or fit a laptop-quick offline-feature model in process.

    Shared by ``python -m repro.stream replay`` and the sharded serving
    CLI (``python -m repro.shard``): both need a scoring service and
    accept either a persisted artifact bundle or an in-process fit at a
    named experiment scale.
    """
    if bundle:
        return CharacterizationService.from_bundle(
            bundle, runtime=runtime, chunk_size=chunk_size
        )
    config = ExperimentConfig.from_scale(scale, random_state=seed)
    dataset = build_dataset(
        n_po_matchers=config.n_po_matchers,
        n_oaei_matchers=config.n_oaei_matchers,
        random_state=config.random_state,
    )
    profiles, _ = characterize_population(dataset.po_matchers, random_state=config.random_state)
    model = MExICharacterizer(
        variant=MExIVariant.SUB_50,
        feature_sets=("lrsm", "beh", "mou"),
        random_state=config.random_state,
        cache=FeatureBlockCache(),
    )
    model.fit(dataset.po_matchers, labels_matrix(profiles))
    return CharacterizationService(model, runtime=runtime, chunk_size=chunk_size)


def _build_service(args: argparse.Namespace) -> CharacterizationService:
    """Build the replay service from parsed CLI flags."""
    return build_service(
        args.bundle,
        scale=args.scale,
        seed=args.seed,
        runtime=args.runtime,
        chunk_size=args.chunk_size,
    )


def _workload(seed: int, n_sessions: int) -> list[HumanMatcher]:
    """An archetype-cycled cohort whose traces the replay streams live."""
    pair, reference = build_po_task()
    return simulate_population(
        pair,
        reference,
        n_matchers=n_sessions,
        archetypes=list(REPLAY_ARCHETYPES),
        random_state=seed + 1,  # distinct from the training cohorts
        id_prefix="live",
    )


def _adapter_workload(args: argparse.Namespace):
    """Parse ``--input`` (and ``--decisions-input``) through the registry.

    Returns ``(workload, quarantine_log, workload_info)``: the matcher
    cohort rebuilt from the surviving rows, the quarantine ledger the
    screened read filled (``None`` under ``--recovery abort``, where the
    first bad row raises instead), and the provenance record the
    checkpoint manifest stores for resume-time verification.
    """
    from repro.adapters import (
        ADAPTER_TRACE_VERSION,
        merge_traces,
        read_source,
        trace_fingerprint,
    )
    from repro.stream.quarantine import QuarantineLog

    quarantine = None if args.recovery == "abort" else QuarantineLog()
    read_kwargs = dict(
        quarantine=quarantine,
        policy=args.recovery,
        clock_skew=args.clock_skew,
    )
    traces = read_source(args.input, **read_kwargs)
    if args.decisions_input:
        decisions = read_source(args.decisions_input, **read_kwargs)
        traces = merge_traces(traces, decisions)
    info = {
        "source": args.input,
        "trace_version": ADAPTER_TRACE_VERSION,
        "fingerprint": trace_fingerprint(traces),
    }
    return [trace.to_matcher() for trace in traces], quarantine, info


def _check_resume_workload(resume: str, info: dict) -> None:
    """Warn when a resumed checkpoint disagrees with the current ``--input``."""
    saved = read_checkpoint_manifest(resume).get("workload")
    if saved is None:
        warnings.warn(
            ReproRuntimeWarning(
                f"checkpoint {resume} records no input workload; cannot "
                "verify it matches --input"
            ),
            stacklevel=3,
        )
        return
    if saved.get("trace_version") != info["trace_version"]:
        warnings.warn(
            ReproRuntimeWarning(
                f"checkpoint {resume} was written with adapter trace version "
                f"{saved.get('trace_version')} but this build uses "
                f"{info['trace_version']}; resumed scores may diverge"
            ),
            stacklevel=3,
        )
    if saved.get("fingerprint") != info["fingerprint"]:
        warnings.warn(
            ReproRuntimeWarning(
                f"checkpoint {resume} was written from "
                f"{saved.get('source')} (fingerprint {saved.get('fingerprint')}) "
                f"but --input resolves to fingerprint {info['fingerprint']}; "
                "resuming against a different trace"
            ),
            stacklevel=3,
        )


def _replay(
    manager: SessionManager,
    workload: Sequence[HumanMatcher],
    *,
    steps: int,
    report_every: int,
    runtime,
    chunk_size: int,
    stop_after: Optional[int] = None,
) -> list[dict]:
    """Stream the workload step by step; return the scores-over-time records.

    ``stop_after`` halts the replay after that step (the checkpoint /
    resume demonstration: a resumed replay with the same ``steps`` and
    ``report_every`` continues the same schedule and lands on the same
    final scores as an uninterrupted run).
    """
    horizon = 0.0
    for matcher in workload:
        if len(matcher.movement):
            horizon = max(horizon, float(matcher.movement.data.t[-1]))
        if len(matcher.history):
            horizon = max(horizon, float(matcher.history.decisions[-1].timestamp))
    boundaries = np.linspace(0.0, horizon, max(steps, 1) + 1)
    last_step = len(boundaries) - 1
    if stop_after is not None:
        last_step = min(last_step, max(stop_after, 1))

    records: list[dict] = []
    for step in range(1, last_step + 1):
        start, end = float(boundaries[step - 1]), float(boundaries[step])
        for matcher in workload:
            # Evicted (or brand-new) sessions restart from the current
            # window — exactly what live LRU traffic looks like.
            if matcher.matcher_id not in manager:
                manager.open(
                    matcher.matcher_id,
                    matcher.history.shape,
                    screen=matcher.movement.screen,
                )
            session = manager.session(matcher.matcher_id)
            data = matcher.movement.data
            # Resuming: replay only what the session has not seen yet.
            floor = max(start, session.buffer.max_timestamp)
            lo = int(np.searchsorted(data.t, floor, side="right"))
            hi = int(np.searchsorted(data.t, end, side="right"))
            if hi > lo:
                manager.ingest_events(
                    matcher.matcher_id,
                    data.x[lo:hi], data.y[lo:hi], data.codes[lo:hi], data.t[lo:hi],
                )
            last_decision = max(
                (d.timestamp for d in session.decisions), default=-np.inf
            )
            for decision in matcher.history:
                if max(start, last_decision) < decision.timestamp <= end:
                    manager.add_decision(
                        matcher.matcher_id,
                        decision.row, decision.col,
                        decision.confidence, decision.timestamp,
                    )
        if manager.idle_timeout is not None:
            manager.evict_idle(now=end)
        if step % max(report_every, 1) == 0 or step == last_step:
            scores = manager.recharacterize(runtime=runtime, chunk_size=chunk_size)
            stats = manager.stats()
            record = {
                "step": step,
                "stream_time": end,
                "n_scored": scores.n_matchers,
                "n_sessions": stats["n_sessions"],
                "n_events": stats["n_events"],
            }
            if scores.n_matchers:
                for column, name in enumerate(EXPERT_CHARACTERISTICS):
                    record[f"mean_{name}"] = float(scores.probabilities[:, column].mean())
                    record[f"experts_{name}"] = int(scores.labels[:, column].sum())
            records.append(record)
    return records


def _print_table(records: list[dict], manager: SessionManager) -> None:
    header = (
        f"{'step':>4} | {'time':>8} | {'scored':>6} | "
        + " | ".join(f"{name:>10}" for name in EXPERT_CHARACTERISTICS)
    )
    print(header)
    print("-" * len(header))
    for record in records:
        cells = " | ".join(
            (
                f"{record.get(f'mean_{name}', float('nan')):>10.3f}"
                if f"mean_{name}" in record
                else f"{'-':>10}"
            )
            for name in EXPERT_CHARACTERISTICS
        )
        print(
            f"{record['step']:>4} | {record['stream_time']:>7.1f}s | "
            f"{record['n_scored']:>6} | {cells}"
        )
    stats = manager.stats()
    print(
        f"replayed {stats['n_events']} events / {stats['n_decisions']} decisions "
        f"across {stats['n_sessions']} sessions "
        f"({stats['n_evicted']} evicted, {stats['n_dirty']} still dirty)"
    )


def _replay_command(args: argparse.Namespace) -> int:
    if args.decisions_input and not args.input:
        raise SystemExit("--decisions-input requires --input")
    journal = None
    if args.journal:
        journal = obs.RunJournal(args.journal)
        obs.tracer().attach_journal(journal)
        journal.write("run.start", {"command": "replay", "scale": args.scale,
                                    "seed": args.seed, "steps": args.steps})
    try:
        return _run_replay(args, journal)
    finally:
        if journal is not None:
            obs.tracer().detach_journal()
            journal.write_metrics(obs.default_registry())
            journal.close()


def _run_replay(args: argparse.Namespace, journal=None) -> int:
    service = _build_service(args)
    quarantine = None
    workload_info = None
    if args.input:
        workload, quarantine, workload_info = _adapter_workload(args)
    else:
        workload = _workload(args.seed, args.sessions)
    if args.resume:
        if workload_info is not None:
            _check_resume_workload(args.resume, workload_info)
        manager = load_checkpoint(args.resume, service, quarantine=quarantine)
        if args.max_sessions is not None or args.idle_timeout is not None or args.reorder_window:
            warnings.warn(
                ReproRuntimeWarning(
                    "--resume restores the manager settings saved in the "
                    "checkpoint; --max-sessions/--idle-timeout/--reorder-window "
                    "flags are ignored"
                ),
                stacklevel=2,
            )
    else:
        manager = SessionManager(
            service,
            max_sessions=args.max_sessions,
            idle_timeout=args.idle_timeout,
            reorder_window=args.reorder_window,
            quarantine=quarantine,
        )
    records = _replay(
        manager,
        workload,
        steps=args.steps,
        report_every=args.report_every,
        runtime=args.runtime,
        chunk_size=args.chunk_size,
        stop_after=args.stop_after,
    )
    if args.format == "json":
        payload = {
            "scale": args.scale,
            "seed": args.seed,
            "resumed_from": args.resume,
            "workload": workload_info,
            "quarantined": quarantine.counts() if quarantine is not None else None,
            "reports": records,
            "stats": manager.stats(),
            "final_scores": {
                session_id: {
                    "labels": entry["labels"].tolist(),
                    "probabilities": entry["probabilities"].tolist(),
                }
                for session_id, entry in sorted(manager.scores().items())
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        _print_table(records, manager)
        if quarantine is not None:
            counts = quarantine.counts()
            by_reason = ", ".join(
                f"{reason}={n}" for reason, n in sorted(counts["by_reason"].items()) if n
            )
            print(
                f"quarantined {counts['total']} rows during adapter ingest"
                + (f" ({by_reason})" if by_reason else "")
            )
    if args.checkpoint:
        bundle = save_checkpoint(manager, args.checkpoint, workload=workload_info)
        manifest = read_checkpoint_manifest(bundle)
        print(f"saved {manifest['n_sessions']}-session checkpoint to {bundle}")
        print(f"  fingerprint: {manifest['fingerprint']}")
    return 0


def _inspect_command(args: argparse.Namespace) -> int:
    manifest = read_checkpoint_manifest(args.checkpoint)
    print(f"checkpoint:     {args.checkpoint}")
    print(f"format:         {manifest['format']} v{manifest['format_version']}")
    print(f"repro version:  {manifest.get('repro_version')}")
    print(f"sessions:       {manifest.get('n_sessions')} ({manifest.get('n_evicted')} evicted)")
    print(f"fingerprint:    {manifest.get('fingerprint')}")
    print(f"model:          {manifest.get('model_fingerprint') or '(in-memory model)'}")
    settings = manifest.get("manager", {})
    print(
        f"manager:        max_sessions={settings.get('max_sessions')}, "
        f"idle_timeout={settings.get('idle_timeout')}, "
        f"reorder_window={settings.get('reorder_window')}"
    )
    workload = manifest.get("workload")
    if workload:
        print(
            f"workload:       {workload.get('source')} "
            f"(trace v{workload.get('trace_version')}, "
            f"fingerprint {workload.get('fingerprint')})"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "replay":
        return _replay_command(args)
    return _inspect_command(args)


if __name__ == "__main__":
    raise SystemExit(main())
