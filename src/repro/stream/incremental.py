"""Online maintainers for the hot behavioral features.

Each maintainer consumes the committed chunks a
:class:`~repro.stream.ingest.StreamingEventBuffer` drains and keeps one
feature of the live session continuously up to date, instead of
recomputing it from the full trace on every arrival:

* :class:`IncrementalHeatMap` — the per-screen-region visit counts the
  paper's heat maps are built from (one ``bincount`` per chunk, added
  onto the running grid);
* :class:`IncrementalTypeCounts` — per-event-type totals;
* :class:`IncrementalMotionStats` — path length, duration, mean speed
  and the running x/y position summaries
  (:class:`~repro.stats.descriptive.RunningSummary`, Welford-style);
* :class:`SessionFeatureState` — the bundle of all three a live session
  carries.

Equivalence contract
--------------------
Every maintainer carries a ``from_batch`` constructor that computes the
same state from a full :class:`~repro.matching.events.EventArray` in one
shot.  Replaying a trace in arbitrary chunkings must agree with the
batch computation:

* **bitwise** for the integer-valued states (heat-map counts, type
  counts, event counts) — integer additions are exact, so chunking
  cannot change them;
* **tight tolerance** for the float statistics (mean/std/path
  length/speed), whose summation order differs between chunked and
  one-shot evaluation.

``tests/stream/test_stream_equivalence.py`` asserts both over random
traces, random chunk sizes (including single-event chunks) and
in-window out-of-order arrival.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.matching.events import EventArray, N_EVENT_TYPES, bin_position
from repro.matching.mouse import HeatMap
from repro.stats.descriptive import RunningSummary


class IncrementalHeatMap:
    """A live visit-count grid, updated one committed chunk at a time.

    Parameters mirror :meth:`EventArray.heat_map_counts`: events are
    clipped to ``screen``, binned onto ``shape``, optionally restricted
    to one event-type ``code``.
    """

    def __init__(
        self,
        screen: tuple[int, int],
        shape: tuple[int, int],
        code: Optional[int] = None,
    ) -> None:
        self.screen = (int(screen[0]), int(screen[1]))
        self.shape = (int(shape[0]), int(shape[1]))
        if self.shape[0] <= 0 or self.shape[1] <= 0:
            raise ValueError("heat-map shape must be positive")
        self.code = code
        self.counts = np.zeros(self.shape, dtype=float)

    def update(self, events: EventArray) -> "IncrementalHeatMap":
        """Fold one chunk of events into the grid (exact integer adds)."""
        if not len(events):
            return self
        if len(events) == 1:
            # Scalar fast path for event-at-a-time streams; bin_position
            # is the same rule heat_map_counts implements vectorized, so
            # the grid stays bitwise-identical.
            if self.code is not None and int(events.codes[0]) != self.code:
                return self
            row, col = bin_position(events.x[0], events.y[0], self.screen, self.shape)
            self.counts[row, col] += 1.0
            return self
        self.counts += events.heat_map_counts(self.screen, self.shape, code=self.code)
        return self

    def heat_map(self) -> HeatMap:
        """The current state as a :class:`~repro.matching.mouse.HeatMap`."""
        return HeatMap(self.counts.copy())

    @classmethod
    def from_batch(
        cls,
        events: EventArray,
        screen: tuple[int, int],
        shape: tuple[int, int],
        code: Optional[int] = None,
    ) -> "IncrementalHeatMap":
        """The state a one-shot batch computation yields (the oracle)."""
        maintainer = cls(screen, shape, code=code)
        maintainer.counts = events.heat_map_counts(screen, shape, code=code)
        return maintainer


class IncrementalTypeCounts:
    """Per-event-type totals, updated one committed chunk at a time."""

    def __init__(self) -> None:
        self.counts = np.zeros(N_EVENT_TYPES, dtype=np.int64)

    def update(self, events: EventArray) -> "IncrementalTypeCounts":
        if len(events) == 1:
            self.counts[int(events.codes[0])] += 1
        elif len(events):
            self.counts += events.counts_by_code()
        return self

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @classmethod
    def from_batch(cls, events: EventArray) -> "IncrementalTypeCounts":
        maintainer = cls()
        maintainer.counts = events.counts_by_code().astype(np.int64)
        return maintainer


class IncrementalMotionStats:
    """Running motion statistics: path, duration, speed, position summaries.

    Chunks must arrive in committed (time-sorted) order — exactly what
    :meth:`StreamingEventBuffer.drain` delivers — because the path length
    and the duration bridge consecutive chunks (the segment from the last
    event of one chunk to the first event of the next belongs to the
    path).
    """

    def __init__(self) -> None:
        self.count = 0
        self.path_length = 0.0
        self.first_t: Optional[float] = None
        self.last_t: Optional[float] = None
        self._last_position: Optional[tuple[float, float]] = None
        self.x_summary = RunningSummary()
        self.y_summary = RunningSummary()

    def update(self, events: EventArray) -> "IncrementalMotionStats":
        if not len(events):
            return self
        if len(events) == 1:
            return self._update_one(
                float(events.x[0]), float(events.y[0]), float(events.t[0])
            )
        if self.first_t is None:
            self.first_t = float(events.t[0])
        self.last_t = float(events.t[-1])
        positions = events.positions()
        if self._last_position is not None:
            bridge = positions[0] - np.asarray(self._last_position)
            self.path_length += float(np.sqrt((bridge**2).sum()))
        if len(events) > 1:
            deltas = np.diff(positions, axis=0)
            self.path_length += float(np.sqrt((deltas**2).sum(axis=1)).sum())
        self._last_position = (float(events.x[-1]), float(events.y[-1]))
        self.count += len(events)
        self.x_summary.update(events.x)
        self.y_summary.update(events.y)
        return self

    def _update_one(self, x: float, y: float, t: float) -> "IncrementalMotionStats":
        """Scalar fast path for event-at-a-time streams."""
        if self.first_t is None:
            self.first_t = t
        self.last_t = t
        if self._last_position is not None:
            dx = x - self._last_position[0]
            dy = y - self._last_position[1]
            self.path_length += math.sqrt(dx * dx + dy * dy)
        self._last_position = (x, y)
        self.count += 1
        self.x_summary.push(x)
        self.y_summary.push(y)
        return self

    @property
    def duration(self) -> float:
        if self.first_t is None or self.count < 2:
            return 0.0
        return float(self.last_t - self.first_t)

    @property
    def mean_speed(self) -> float:
        duration = self.duration
        if duration <= 0:
            return 0.0
        return self.path_length / duration

    def mean_position(self) -> tuple[float, float]:
        if self.count == 0:
            return (0.0, 0.0)
        return (self.x_summary.mean, self.y_summary.mean)

    @classmethod
    def from_batch(cls, events: EventArray) -> "IncrementalMotionStats":
        """The state of a one-shot pass over the full store (the oracle)."""
        stats = cls()
        if len(events):
            stats.count = len(events)
            stats.first_t = float(events.t[0])
            stats.last_t = float(events.t[-1])
            stats.path_length = events.path_length()
            stats._last_position = (float(events.x[-1]), float(events.y[-1]))
            stats.x_summary.update(events.x)
            stats.y_summary.update(events.y)
        return stats

    # Checkpoint support ------------------------------------------------ #

    def state(self) -> np.ndarray:
        """Flat float64 state vector (see ``checkpoint.py``)."""
        has_first = self.first_t is not None
        has_position = self._last_position is not None
        return np.array(
            [
                self.count,
                self.path_length,
                1.0 if has_first else 0.0,
                self.first_t if has_first else 0.0,
                self.last_t if has_first else 0.0,
                1.0 if has_position else 0.0,
                self._last_position[0] if has_position else 0.0,
                self._last_position[1] if has_position else 0.0,
                *self.x_summary.state(),
                *self.y_summary.state(),
            ],
            dtype=np.float64,
        )

    @classmethod
    def from_state(cls, state: np.ndarray) -> "IncrementalMotionStats":
        stats = cls()
        stats.count = int(state[0])
        stats.path_length = float(state[1])
        if state[2] != 0.0:
            stats.first_t = float(state[3])
            stats.last_t = float(state[4])
        if state[5] != 0.0:
            stats._last_position = (float(state[6]), float(state[7]))
        stats.x_summary = RunningSummary.from_state(state[8:13])
        stats.y_summary = RunningSummary.from_state(state[13:18])
        return stats


#: Grid used by the live per-session heat map — the 24x32 grid of
#: :class:`~repro.core.features.mouse.MouseFeatures` (coverage / region mass).
SESSION_HEAT_SHAPE: tuple[int, int] = (24, 32)


class SessionFeatureState:
    """The incremental feature bundle one live session maintains.

    One overall heat map (on the :data:`SESSION_HEAT_SHAPE` grid the mouse
    feature set reads), per-type counts, and the motion statistics.
    ``update`` is called with every drained chunk; ``report`` summarises
    the live state for monitoring without touching the event history.
    """

    def __init__(self, screen: tuple[int, int]) -> None:
        self.screen = (int(screen[0]), int(screen[1]))
        self.heat = IncrementalHeatMap(self.screen, SESSION_HEAT_SHAPE)
        self.type_counts = IncrementalTypeCounts()
        self.motion = IncrementalMotionStats()

    def update(self, events: EventArray) -> "SessionFeatureState":
        self.heat.update(events)
        self.type_counts.update(events)
        self.motion.update(events)
        return self

    @classmethod
    def from_batch(cls, events: EventArray, screen: tuple[int, int]) -> "SessionFeatureState":
        state = cls(screen)
        state.heat = IncrementalHeatMap.from_batch(events, state.screen, SESSION_HEAT_SHAPE)
        state.type_counts = IncrementalTypeCounts.from_batch(events)
        state.motion = IncrementalMotionStats.from_batch(events)
        return state

    def report(self) -> dict:
        """Live descriptive snapshot of the session's behaviour."""
        heat_map = self.heat.heat_map()
        return {
            "n_events": self.motion.count,
            "counts_by_code": self.type_counts.counts.tolist(),
            "duration": self.motion.duration,
            "path_length": self.motion.path_length,
            "mean_speed": self.motion.mean_speed,
            "mean_position": self.motion.mean_position(),
            "coverage": heat_map.coverage(),
        }
