"""OAEI-style alignment/decision-file adapter (``oaei:<path>``).

Schema-matching evaluations (OAEI campaigns, and the KG-RAG4SM-style
schema-matching record vocabulary) exchange alignments as correspondence
rows: matcher, source entity, target entity, relation, confidence, and —
when the tooling logs it — a timestamp.  This adapter reads such a file
as *decision* traces: the matcher column becomes the session id, the
``a<i>``/``b<j>`` entity labels (or bare integers) become the matrix
pair, the confidence and timestamp become the decision payload.  Only
the equivalence relation (``=``) is accepted; anything else fails the
schema.

Decision-only by design — compose with a ``csv``/``jsonl`` mouse-event
log over :func:`~repro.adapters.merge_traces` to rebuild the full
``(H, G)`` behaviour pair.

Header: ``matcher,source,target,relation,confidence,timestamp``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.adapters.base import (
    FieldSpec,
    RecordParseError,
    RecordSchema,
    TraceFormat,
    register,
)
from repro.adapters.records import SessionTrace

_HEADER = "matcher,source,target,relation,confidence,timestamp"


def _entity_index(label: str, prefix: str) -> object:
    """``a3``/``b7``-style labels (or bare integers) to matrix indices.

    Unknown vocabulary passes through unconverted so the schema rejects
    it as ``schema_invalid`` with the field named, not as a parse crash.
    """
    text = label.strip()
    if text.startswith(prefix) and text[len(prefix):].isdigit():
        return int(text[len(prefix):])
    return text if not text.lstrip("-").isdigit() else int(text)


@register
class OaeiDecisionFormat(TraceFormat):
    """OAEI-style correspondence rows as matching-decision traces."""

    format_name = "oaei"
    description = (
        "OAEI-style alignment CSV: matcher,source,target,relation,"
        "confidence,timestamp"
    )
    event_schema = None
    decision_schema = RecordSchema(
        [
            FieldSpec("t", kind="float", minimum=0.0),
            FieldSpec("row", kind="int", minimum=0),
            FieldSpec("col", kind="int", minimum=0),
            FieldSpec("conf", kind="float", minimum=0.0, maximum=1.0),
            FieldSpec("relation", kind="str", choices=("=",)),
        ]
    )

    @classmethod
    def parse_line(cls, line: str, state: dict) -> Optional[tuple[str, dict]]:
        text = line.strip()
        if not text or text.startswith("#"):
            return None
        if text == _HEADER:
            return None
        parts = text.split(",")
        if len(parts) != 6:
            raise RecordParseError(
                f"expected 6 comma-separated fields, got {len(parts)}"
            )
        matcher, source, target, relation, confidence, timestamp = (
            part.strip() for part in parts
        )
        return "decision", {
            "session": matcher,
            "row": _entity_index(source, "a"),
            "col": _entity_index(target, "b"),
            "relation": relation,
            "conf": confidence,
            "t": timestamp,
        }

    @classmethod
    def header_lines(cls, traces: Sequence[SessionTrace]) -> list[str]:
        return [_HEADER]

    @classmethod
    def encode_decision(cls, session_id: str, record: dict) -> str:
        return (
            f"{session_id},a{int(record['row'])},b{int(record['col'])},"
            f"=,{record['conf']!r},{record['t']!r}"
        )


__all__ = ["OaeiDecisionFormat"]
