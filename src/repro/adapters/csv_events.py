"""CSV mouse-event-log adapter (``csv:<path>``).

The plainest external instrumentation dump: one row per mouse event,
header ``session_id,t,x,y,event``, with the event given either by its
stable integer code or by its name from
:data:`~repro.matching.events.EVENT_CODES` (``move``/``left``/
``right``/``scroll``).  Events only — pair it with an OAEI decision file
via :func:`~repro.adapters.merge_traces` when the workload needs
decisions too.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.adapters.base import (
    FieldSpec,
    RecordParseError,
    RecordSchema,
    TraceFormat,
    register,
)
from repro.adapters.records import SessionTrace
from repro.matching.events import EVENT_CODES, N_EVENT_TYPES

_HEADER = "session_id,t,x,y,event"
_NAMES_BY_CODE = {code: name for name, code in EVENT_CODES.items()}


@register
class CsvEventFormat(TraceFormat):
    """One mouse event per CSV row; the lowest-common-denominator log."""

    format_name = "csv"
    description = "CSV mouse-event log: session_id,t,x,y,event"
    event_schema = RecordSchema(
        [
            FieldSpec("t", kind="float", minimum=0.0),
            FieldSpec("x", kind="float", minimum=0.0),
            FieldSpec("y", kind="float", minimum=0.0),
            FieldSpec("code", kind="int", minimum=0, maximum=N_EVENT_TYPES - 1),
        ]
    )
    decision_schema = None

    @classmethod
    def parse_line(cls, line: str, state: dict) -> Optional[tuple[str, dict]]:
        text = line.strip()
        if not text or text.startswith("#"):
            return None
        if text == _HEADER:
            return None
        parts = text.split(",")
        if len(parts) != 5:
            raise RecordParseError(
                f"expected 5 comma-separated fields, got {len(parts)}"
            )
        session_id, t, x, y, event = (part.strip() for part in parts)
        code = EVENT_CODES.get(event, event)
        return "event", {"session": session_id, "t": t, "x": x, "y": y, "code": code}

    @classmethod
    def header_lines(cls, traces: Sequence[SessionTrace]) -> list[str]:
        return [_HEADER]

    @classmethod
    def encode_event(cls, session_id: str, record: dict) -> str:
        name = _NAMES_BY_CODE.get(int(record["code"]), str(record["code"]))
        return (
            f"{session_id},{record['t']!r},{record['x']!r},{record['y']!r},{name}"
        )


__all__ = ["CsvEventFormat"]
