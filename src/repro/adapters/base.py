"""Format-registry contract for ingesting external matcher traces.

Every score the system produced before this layer came from the clean
simulated cohort; real deployments ingest files written by other
people's instrumentation — mouse-event logs in CSV or JSONL, OAEI-style
alignment/decision files — and those files lie.  This module is the
trust boundary: one :class:`TraceFormat` subclass per source format
(the registry pattern), a shared line-oriented read driver with
per-field schema validation (:class:`FieldSpec` / :class:`RecordSchema`),
row-level quarantine through the stream layer's
:class:`~repro.stream.QuarantineLog`, a configurable recovery policy
(``skip`` / ``repair`` / ``abort``), and bounded retry with exponential
backoff on transient reads behind the ``adapter.read`` fault seam.

Screening happens entirely at parse time: the traces a format's
:meth:`TraceFormat.read` returns are already stream-clean (survivor rows
sorted stably by timestamp per session, exact duplicates diverted), so
downstream consumers — :class:`~repro.stream.SessionManager`, the
:class:`~repro.shard.ShardFleet`, the cursor-based
:class:`~repro.shard.ReplayDriver` — never see a row the adapter
rejected.  That keeps redelivery cursors honest: a quarantined row never
occupies a position the driver is waiting to confirm.

The invariant the suite pins: for any seeded corruption of a clean
trace, screened reading quarantines exactly the damaged rows (exact
per-reason counters) and the survivors are bitwise equal to a strict
read of the clean trace.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.adapters.records import DEFAULT_SCREEN, SessionTrace
from repro.runtime.faults import InjectedFault, active_injector
from repro.stream.quarantine import QuarantineLog

#: Recovery policies for rows that fail schema validation.
RECOVERY_POLICIES = ("skip", "repair", "abort")

#: Default bounded-retry budget for transient read failures.
DEFAULT_MAX_READ_RETRIES = 3

#: Default base backoff (seconds) between read retries; doubles per attempt.
DEFAULT_BACKOFF = 0.01

#: Default tolerated backwards timestamp jump (seconds) within one session
#: before a row is quarantined as ``clock_skew``.
DEFAULT_CLOCK_SKEW = 1.0


class AdapterError(ValueError):
    """A source file (or its transport) could not be ingested.

    Raised on unreadable inputs, exhausted read retries, unknown formats,
    and — under the ``abort`` recovery policy — on the first bad row.
    """


class RecordParseError(ValueError):
    """One source row could not be decoded at all (``unparseable``)."""


@dataclass(frozen=True)
class FieldSpec:
    """Schema for one field of a decoded record.

    ``kind`` is ``"float"``, ``"int"`` or ``"str"``.  Numeric kinds
    support inclusive ``minimum`` / ``maximum`` bounds and (for floats)
    a finiteness requirement; string kinds support an enumerated
    ``choices`` vocabulary.  :meth:`parse` raises ``ValueError`` with the
    offending field named; :meth:`repair` clamps out-of-range numerics
    into bounds for the ``repair`` recovery policy (type failures and
    unknown vocabulary are not repairable).
    """

    name: str
    kind: str = "float"
    required: bool = True
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[tuple[str, ...]] = None
    finite: bool = True

    def parse(self, raw: object) -> Union[float, int, str]:
        """The validated, converted value — or ``ValueError``."""
        if raw is None or (isinstance(raw, str) and not raw.strip()):
            raise ValueError(f"field {self.name!r} is missing")
        if self.kind == "str":
            value = str(raw).strip()
            if self.choices is not None and value not in self.choices:
                raise ValueError(
                    f"field {self.name!r} value {value!r} not in {self.choices}"
                )
            return value
        try:
            if self.kind == "int":
                number: Union[int, float] = int(str(raw).strip())
            else:
                number = float(raw)
        except (TypeError, ValueError):
            raise ValueError(
                f"field {self.name!r} value {raw!r} is not a {self.kind}"
            ) from None
        if self.kind == "float" and self.finite and not math.isfinite(number):
            raise ValueError(f"field {self.name!r} value {number!r} is not finite")
        if self.minimum is not None and number < self.minimum:
            raise ValueError(
                f"field {self.name!r} value {number} below minimum {self.minimum}"
            )
        if self.maximum is not None and number > self.maximum:
            raise ValueError(
                f"field {self.name!r} value {number} above maximum {self.maximum}"
            )
        return number

    def repair(self, raw: object) -> Union[float, int, str]:
        """The ``repair``-policy value: clamp numerics into bounds.

        Only range violations are repairable; anything :meth:`parse`
        rejects for type, finiteness or vocabulary reasons re-raises.
        """
        if self.kind == "str":
            return self.parse(raw)
        try:
            if self.kind == "int":
                number: Union[int, float] = int(str(raw).strip())
            else:
                number = float(raw)
        except (TypeError, ValueError):
            raise ValueError(
                f"field {self.name!r} value {raw!r} is not a {self.kind}"
            ) from None
        if self.kind == "float" and self.finite and not math.isfinite(number):
            raise ValueError(f"field {self.name!r} value {number!r} is not finite")
        if self.minimum is not None and number < self.minimum:
            number = type(number)(self.minimum)
        if self.maximum is not None and number > self.maximum:
            number = type(number)(self.maximum)
        return number


class RecordSchema:
    """An ordered bundle of :class:`FieldSpec` applied to a raw record."""

    def __init__(self, fields: Sequence[FieldSpec]) -> None:
        self.fields = tuple(fields)
        self.by_name = {spec.name: spec for spec in self.fields}

    def validate(self, raw: dict, *, repair: bool = False) -> dict:
        """The validated record — or ``ValueError`` naming the field."""
        validated: dict = {}
        for spec in self.fields:
            value = raw.get(spec.name)
            if value is None and not spec.required:
                continue
            validated[spec.name] = spec.repair(value) if repair else spec.parse(value)
        return validated


def _validate_policy(policy: str) -> str:
    if policy not in RECOVERY_POLICIES:
        raise ValueError(
            f"unknown recovery policy {policy!r}; expected one of {RECOVERY_POLICIES}"
        )
    return policy


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

_REGISTRY: dict[str, type["TraceFormat"]] = {}


def register(cls: type["TraceFormat"]) -> type["TraceFormat"]:
    """Class decorator adding a format to the registry by ``format_name``."""
    name = cls.format_name
    if not name:
        raise ValueError(f"{cls.__name__} must define a non-empty format_name")
    _REGISTRY[name] = cls
    return cls


def get_format(name: str) -> type["TraceFormat"]:
    """The registered :class:`TraceFormat` subclass for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AdapterError(
            f"unknown trace format {name!r}; available: {available_formats()}"
        ) from None


def available_formats() -> tuple[str, ...]:
    """The registered format names, sorted."""
    return tuple(sorted(_REGISTRY))


def parse_source(source: str) -> tuple[type["TraceFormat"], Path]:
    """Split a ``fmt:path`` CLI source spec into (format class, path)."""
    name, separator, path = source.partition(":")
    if not separator or not name or not path:
        raise AdapterError(
            f"adapter source {source!r} must look like '<format>:<path>', "
            f"e.g. 'csv:events.csv'; available formats: {available_formats()}"
        )
    return get_format(name), Path(path)


# --------------------------------------------------------------------- #
# The shared read driver
# --------------------------------------------------------------------- #


class TraceFormat:
    """Contract one source format implements; the registry's unit.

    Subclasses define the class identity (``format_name``,
    ``description``), the record schemas, and four hooks:

    * :meth:`parse_line` — one raw line to ``None`` (ignorable),
      ``("event", raw_dict)`` or ``("decision", raw_dict)``; raise
      :class:`RecordParseError` for undecodable garbage.
    * :meth:`session_defaults` — per-file header state (shape/screen per
      session id), consulted when assembling traces.
    * :meth:`encode_event` / :meth:`encode_decision` — one record back to
      its line form (used by :meth:`write` and by the corruption writer,
      so damage is injected in the format's own vocabulary).

    The base class owns everything else: the retrying line reader behind
    the ``adapter.read`` fault seam, schema validation with the recovery
    policy, clock-skew and duplicate screening, quarantine accounting,
    and trace assembly.
    """

    #: Registry key (``csv``, ``jsonl``, ``oaei``); set by subclasses.
    format_name: str = ""
    #: One-line human description, shown in CLI errors.
    description: str = ""
    #: Schemas, set by subclasses (either may be ``None`` for formats
    #: that carry only events or only decisions).
    event_schema: Optional[RecordSchema] = None
    decision_schema: Optional[RecordSchema] = None

    # ---------------- subclass hooks ---------------- #

    @classmethod
    def parse_line(
        cls, line: str, state: dict
    ) -> Optional[tuple[str, dict]]:  # pragma: no cover - abstract
        """Decode one line; ``state`` is per-file scratch for headers."""
        raise NotImplementedError

    @classmethod
    def session_defaults(cls, state: dict, session_id: str) -> dict:
        """Header-derived defaults (``shape``, ``screen``) for a session."""
        return {}

    @classmethod
    def encode_event(cls, session_id: str, record: dict) -> str:  # pragma: no cover
        raise NotImplementedError

    @classmethod
    def encode_decision(cls, session_id: str, record: dict) -> str:  # pragma: no cover
        raise NotImplementedError

    @classmethod
    def header_lines(cls, traces: Sequence[SessionTrace]) -> list[str]:
        """Leading lines for :meth:`write` (column header, session headers)."""
        return []

    # ---------------- the shared driver ---------------- #

    @classmethod
    def read_lines(
        cls,
        path: Union[str, Path],
        *,
        max_read_retries: int = DEFAULT_MAX_READ_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> list[str]:
        """The file's lines, retrying transient failures with backoff.

        Each attempt consults the ``adapter.read`` fault seam (keyed on
        the file name, with an explicit attempt counter so ``times=``
        plans fire per attempt, not per call).  ``OSError`` and injected
        faults alike are retried up to ``max_read_retries`` extra
        attempts with exponential backoff; an exhausted budget surfaces
        as :class:`AdapterError`.
        """
        path = Path(path)
        injector = active_injector()
        attempts = int(max_read_retries) + 1
        failure: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                if injector is not None:
                    injector.check("adapter.read", key=path.name, attempt=attempt)
                return path.read_text().splitlines()
            except (OSError, InjectedFault) as exc:
                failure = exc
                if attempt + 1 < attempts:
                    sleep(float(backoff) * (2.0**attempt))
        raise AdapterError(
            f"could not read {path} after {attempts} attempts: {failure}"
        ) from failure

    @classmethod
    def read(
        cls,
        path: Union[str, Path],
        *,
        quarantine: Optional[QuarantineLog] = None,
        policy: str = "skip",
        shape: tuple[int, int] = (6, 6),
        screen: tuple[int, int] = DEFAULT_SCREEN,
        clock_skew: float = DEFAULT_CLOCK_SKEW,
        max_read_retries: int = DEFAULT_MAX_READ_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> list[SessionTrace]:
        """Parse a source file into clean, per-session traces.

        With a ``quarantine`` log the read is *screened*: rows that fail
        to decode (``unparseable``), fail their schema
        (``schema_invalid`` — unless the ``repair`` policy salvages
        them), rewind the session clock beyond ``clock_skew`` seconds
        (``clock_skew``), or exactly duplicate an earlier row of the
        same session (``duplicate``) are diverted into the log with
        exact per-reason counters, and the survivors are returned.
        Without one the read is *strict*: the first bad row raises
        :class:`AdapterError` (the ``abort`` policy forces the same even
        when a log is attached).

        Survivor events are sorted stably by timestamp per session, so
        the returned traces are ready for strict downstream ingest.
        """
        policy = _validate_policy(policy)
        strict = quarantine is None or policy == "abort"
        lines = cls.read_lines(
            path, max_read_retries=max_read_retries, backoff=backoff, sleep=sleep
        )
        state: dict = {}
        # session_id -> {"events": [record...], "decisions": [record...]}
        sessions: dict[str, dict[str, list[dict]]] = {}
        # session_id -> kind -> running max timestamp (clock-skew screen)
        clocks: dict[str, dict[str, float]] = {}
        # session_id -> kind -> set of exact payload tuples (duplicate screen)
        seen: dict[str, dict[str, set]] = {}

        def divert(reason: str, detail: str, session_id: str, record: dict) -> None:
            if strict:
                raise AdapterError(
                    f"{path}: {detail} (row quarantinable as {reason!r})"
                )
            assert quarantine is not None
            quarantine.add(
                session_id=session_id or "<unknown>",
                reason=reason,
                detail=detail,
                x=float(record.get("x", float("nan"))),
                y=float(record.get("y", float("nan"))),
                code=int(record.get("code", record.get("row", -1))),
                t=float(record.get("t", float("nan"))),
            )

        for number, line in enumerate(lines, start=1):
            try:
                parsed = cls.parse_line(line, state)
            except RecordParseError as exc:
                divert("unparseable", f"line {number}: {exc}", "", {})
                continue
            if parsed is None:
                continue
            kind, raw = parsed
            session_id = str(raw.get("session", "")).strip()
            if not session_id:
                divert(
                    "unparseable", f"line {number}: record without a session id",
                    "", {},
                )
                continue
            schema = cls.event_schema if kind == "event" else cls.decision_schema
            assert schema is not None
            try:
                record = schema.validate(raw)
            except ValueError as exc:
                if policy == "repair":
                    try:
                        record = schema.validate(raw, repair=True)
                    except ValueError:
                        divert(
                            "schema_invalid", f"line {number}: {exc}",
                            session_id, {},
                        )
                        continue
                else:
                    divert("schema_invalid", f"line {number}: {exc}", session_id, {})
                    continue
            timestamp = float(record["t"])
            running = clocks.setdefault(session_id, {})
            latest = running.get(kind, float("-inf"))
            if latest - timestamp > float(clock_skew):
                divert(
                    "clock_skew",
                    f"line {number}: timestamp {timestamp} rewinds "
                    f"{latest - timestamp:.3f}s behind session maximum {latest}",
                    session_id,
                    record,
                )
                continue
            running[kind] = max(latest, timestamp)
            payload = tuple(sorted(record.items()))
            kind_seen = seen.setdefault(session_id, {}).setdefault(kind, set())
            if payload in kind_seen:
                divert(
                    "duplicate",
                    f"line {number}: exact duplicate {kind} row",
                    session_id,
                    record,
                )
                continue
            kind_seen.add(payload)
            bucket = sessions.setdefault(
                session_id, {"events": [], "decisions": []}
            )
            bucket["events" if kind == "event" else "decisions"].append(record)

        traces: list[SessionTrace] = []
        for session_id in sorted(sessions):
            bucket = sessions[session_id]
            defaults = cls.session_defaults(state, session_id)
            traces.append(
                _assemble_trace(
                    session_id,
                    bucket["events"],
                    bucket["decisions"],
                    shape=defaults.get("shape", shape),
                    screen=defaults.get("screen", screen),
                )
            )
        return traces

    @classmethod
    def write(cls, path: Union[str, Path], traces: Sequence[SessionTrace]) -> Path:
        """Emit traces in this format (the round-trip partner of read)."""
        path = Path(path)
        lines = cls.header_lines(traces)
        for trace in traces:
            for kind, payload in iter_trace_records(trace):
                if kind == "event" and cls.event_schema is not None:
                    lines.append(cls.encode_event(trace.session_id, payload))
                elif kind == "decision" and cls.decision_schema is not None:
                    lines.append(cls.encode_decision(trace.session_id, payload))
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path


def iter_trace_records(trace: SessionTrace) -> Iterable[tuple[str, dict]]:
    """A trace's rows as ``(kind, record)`` pairs, merged by timestamp.

    Events and decisions are interleaved in timestamp order (events
    first on ties), so written files read back in source order and the
    corruption writer can damage a realistic mixed stream.
    """
    records: list[tuple[float, int, str, dict]] = []
    for index in range(trace.n_events):
        records.append(
            (
                float(trace.t[index]),
                0,
                "event",
                {
                    "x": float(trace.x[index]),
                    "y": float(trace.y[index]),
                    "code": int(trace.codes[index]),
                    "t": float(trace.t[index]),
                },
            )
        )
    for index in range(trace.n_decisions):
        records.append(
            (
                float(trace.d_t[index]),
                1,
                "decision",
                {
                    "row": int(trace.d_rows[index]),
                    "col": int(trace.d_cols[index]),
                    "conf": float(trace.d_conf[index]),
                    "t": float(trace.d_t[index]),
                },
            )
        )
    records.sort(key=lambda item: (item[0], item[1]))
    for _, _, kind, payload in records:
        yield kind, payload


def _assemble_trace(
    session_id: str,
    events: list[dict],
    decisions: list[dict],
    *,
    shape: tuple[int, int],
    screen: tuple[int, int],
) -> SessionTrace:
    """Survivor records to a :class:`SessionTrace` (stable sort by t)."""
    event_order = sorted(range(len(events)), key=lambda i: events[i]["t"])
    decision_order = sorted(range(len(decisions)), key=lambda i: decisions[i]["t"])
    rows = max([shape[0]] + [int(decisions[i]["row"]) + 1 for i in decision_order])
    cols = max([shape[1]] + [int(decisions[i]["col"]) + 1 for i in decision_order])
    return SessionTrace(
        session_id=session_id,
        shape=(rows, cols),
        x=np.array([events[i]["x"] for i in event_order], dtype=np.float64),
        y=np.array([events[i]["y"] for i in event_order], dtype=np.float64),
        codes=np.array([events[i]["code"] for i in event_order], dtype=np.int64),
        t=np.array([events[i]["t"] for i in event_order], dtype=np.float64),
        d_rows=np.array(
            [decisions[i]["row"] for i in decision_order], dtype=np.int64
        ),
        d_cols=np.array(
            [decisions[i]["col"] for i in decision_order], dtype=np.int64
        ),
        d_conf=np.array(
            [decisions[i]["conf"] for i in decision_order], dtype=np.float64
        ),
        d_t=np.array([decisions[i]["t"] for i in decision_order], dtype=np.float64),
        screen=(int(screen[0]), int(screen[1])),
    )


def read_source(
    source: str,
    *,
    quarantine: Optional[QuarantineLog] = None,
    policy: str = "skip",
    **kwargs,
) -> list[SessionTrace]:
    """Read a ``fmt:path`` CLI source spec (the CLIs' entry point)."""
    format_cls, path = parse_source(source)
    return format_cls.read(path, quarantine=quarantine, policy=policy, **kwargs)


__all__ = [
    "AdapterError",
    "DEFAULT_BACKOFF",
    "DEFAULT_CLOCK_SKEW",
    "DEFAULT_MAX_READ_RETRIES",
    "FieldSpec",
    "RECOVERY_POLICIES",
    "RecordParseError",
    "RecordSchema",
    "TraceFormat",
    "available_formats",
    "get_format",
    "iter_trace_records",
    "parse_source",
    "read_source",
    "register",
]
