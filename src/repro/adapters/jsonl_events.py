"""JSONL trace adapter (``jsonl:<path>``) — the full-fidelity format.

One JSON object per line, carrying the complete workload: per-session
header records declare the matrix shape and screen, and ``event`` /
``decision`` records carry the columns.  The only format that
round-trips a :class:`~repro.adapters.SessionTrace` completely (events
*and* decisions *and* geometry), so it is the reference format for the
round-trip property tests and the corruption writer's richest target.

Record shapes::

    {"kind": "session", "session": "s1", "shape": [6, 6], "screen": [768, 1024]}
    {"kind": "event", "session": "s1", "t": 0.25, "x": 10.0, "y": 12.0, "event": "move"}
    {"kind": "decision", "session": "s1", "t": 4.0, "row": 2, "col": 3, "confidence": 0.8}
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.adapters.base import (
    FieldSpec,
    RecordParseError,
    RecordSchema,
    TraceFormat,
    register,
)
from repro.adapters.records import SessionTrace
from repro.matching.events import EVENT_CODES, N_EVENT_TYPES

_NAMES_BY_CODE = {code: name for name, code in EVENT_CODES.items()}


@register
class JsonlTraceFormat(TraceFormat):
    """Line-delimited JSON records: session headers, events, decisions."""

    format_name = "jsonl"
    description = "JSONL trace: session/event/decision records, one per line"
    event_schema = RecordSchema(
        [
            FieldSpec("t", kind="float", minimum=0.0),
            FieldSpec("x", kind="float", minimum=0.0),
            FieldSpec("y", kind="float", minimum=0.0),
            FieldSpec("code", kind="int", minimum=0, maximum=N_EVENT_TYPES - 1),
        ]
    )
    decision_schema = RecordSchema(
        [
            FieldSpec("t", kind="float", minimum=0.0),
            FieldSpec("row", kind="int", minimum=0),
            FieldSpec("col", kind="int", minimum=0),
            FieldSpec("conf", kind="float", minimum=0.0, maximum=1.0),
        ]
    )

    @classmethod
    def parse_line(cls, line: str, state: dict) -> Optional[tuple[str, dict]]:
        text = line.strip()
        if not text:
            return None
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RecordParseError(f"broken JSON: {exc.msg}") from None
        if not isinstance(obj, dict):
            raise RecordParseError("JSON record is not an object")
        kind = obj.get("kind")
        if kind == "session":
            session_id = str(obj.get("session", "")).strip()
            if session_id:
                headers = state.setdefault("headers", {})
                entry: dict = {}
                shape = obj.get("shape")
                screen = obj.get("screen")
                if isinstance(shape, (list, tuple)) and len(shape) == 2:
                    entry["shape"] = (int(shape[0]), int(shape[1]))
                if isinstance(screen, (list, tuple)) and len(screen) == 2:
                    entry["screen"] = (int(screen[0]), int(screen[1]))
                headers[session_id] = entry
            return None
        if kind == "event":
            event = obj.get("event")
            code = EVENT_CODES.get(event, event)
            return "event", {
                "session": obj.get("session"),
                "t": obj.get("t"),
                "x": obj.get("x"),
                "y": obj.get("y"),
                "code": code,
            }
        if kind == "decision":
            return "decision", {
                "session": obj.get("session"),
                "t": obj.get("t"),
                "row": obj.get("row"),
                "col": obj.get("col"),
                "conf": obj.get("confidence"),
            }
        raise RecordParseError(f"unknown record kind {kind!r}")

    @classmethod
    def session_defaults(cls, state: dict, session_id: str) -> dict:
        return state.get("headers", {}).get(session_id, {})

    @classmethod
    def header_lines(cls, traces: Sequence[SessionTrace]) -> list[str]:
        lines = []
        for trace in traces:
            header = {
                "kind": "session",
                "session": trace.session_id,
                "shape": list(trace.shape),
            }
            if trace.screen is not None:
                header["screen"] = list(trace.screen)
            lines.append(json.dumps(header, sort_keys=True))
        return lines

    @classmethod
    def encode_event(cls, session_id: str, record: dict) -> str:
        return json.dumps(
            {
                "kind": "event",
                "session": session_id,
                "t": float(record["t"]),
                "x": float(record["x"]),
                "y": float(record["y"]),
                "event": _NAMES_BY_CODE.get(
                    int(record["code"]), int(record["code"])
                ),
            },
            sort_keys=True,
        )

    @classmethod
    def encode_decision(cls, session_id: str, record: dict) -> str:
        return json.dumps(
            {
                "kind": "decision",
                "session": session_id,
                "t": float(record["t"]),
                "row": int(record["row"]),
                "col": int(record["col"]),
                "confidence": float(record["conf"]),
            },
            sort_keys=True,
        )


__all__ = ["JsonlTraceFormat"]
