"""The neutral trace record every ingestion layer speaks (:class:`SessionTrace`).

One session's complete offline workload — mouse-event columns plus the
matching-decision columns — as a frozen struct-of-arrays record.  It was
born in :mod:`repro.shard.replay` as the replay driver's unit of work;
it lives here so the format adapters (:mod:`repro.adapters`), the
simulators (:mod:`repro.simulation`) and the sharded replay layer can
all exchange traces without the adapters importing the serving stack.
:mod:`repro.shard.replay` re-exports it unchanged.

Helpers:

* :func:`trace_from_matcher` — freeze a simulated
  :class:`~repro.matching.matcher.HumanMatcher` into a trace (the bridge
  from the persona simulators to trace files);
* :func:`merge_traces` — join event-only traces (CSV/JSONL mouse logs)
  with decision-only traces (OAEI alignment files) by session id;
* :func:`trace_fingerprint` — a keyless blake2b content fingerprint
  over a workload, byte-for-byte stable across processes.  The stream
  CLI records it in checkpoint manifests so a resume against a
  *different* input trace warns instead of silently diverging.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

#: Default logical screen for traces (MovementMap's default).
DEFAULT_SCREEN = (768, 1024)

#: Version of the adapter trace vocabulary (recorded in checkpoint
#: manifests next to the workload fingerprint; bump on incompatible
#: changes to the record schema).
ADAPTER_TRACE_VERSION = 1


@dataclass(frozen=True)
class SessionTrace:
    """One session's full offline workload, in event-time order.

    ``x/y/codes/t`` are the mouse-event columns (``t`` ascending);
    ``d_rows/d_cols/d_conf/d_t`` are the matching decisions (``d_t``
    ascending).  The replay driver slices both by window boundaries.
    """

    session_id: str
    shape: tuple[int, int]
    x: np.ndarray
    y: np.ndarray
    codes: np.ndarray
    t: np.ndarray
    d_rows: np.ndarray
    d_cols: np.ndarray
    d_conf: np.ndarray
    d_t: np.ndarray
    screen: Optional[tuple[int, int]] = None

    @property
    def n_events(self) -> int:
        return int(self.t.size)

    @property
    def n_decisions(self) -> int:
        return int(self.d_t.size)

    @property
    def horizon(self) -> float:
        """Latest timestamp anywhere in the trace (0.0 when empty)."""
        last = 0.0
        if self.t.size:
            last = max(last, float(self.t[-1]))
        if self.d_t.size:
            last = max(last, float(self.d_t[-1]))
        return last

    def to_matcher(self):
        """The trace frozen as a :class:`~repro.matching.matcher.HumanMatcher`.

        The bridge into every offline consumer (the stream CLI's replay
        loop, batch characterization): decisions become a
        :class:`~repro.matching.history.DecisionHistory`, events a
        :class:`~repro.matching.mouse.MovementMap`.
        """
        from repro.matching.events import EventArray
        from repro.matching.history import Decision, DecisionHistory
        from repro.matching.matcher import HumanMatcher
        from repro.matching.mouse import MovementMap

        history = DecisionHistory(
            [
                Decision(
                    row=int(self.d_rows[index]),
                    col=int(self.d_cols[index]),
                    confidence=float(self.d_conf[index]),
                    timestamp=float(self.d_t[index]),
                )
                for index in range(self.d_t.size)
            ],
            shape=self.shape,
        )
        screen = self.screen if self.screen is not None else DEFAULT_SCREEN
        movement = MovementMap(
            screen=screen,
            data=EventArray(self.x, self.y, self.codes, self.t),
        )
        return HumanMatcher(
            matcher_id=self.session_id, history=history, movement=movement
        )


def trace_from_matcher(matcher) -> SessionTrace:
    """Freeze a :class:`~repro.matching.matcher.HumanMatcher` into a trace.

    Decisions are emitted in the history's stable timestamp order and
    events in the movement map's committed (time-sorted) order, so a
    trace written to a file and parsed back round-trips bitwise.
    """
    decisions = matcher.history.decisions
    data = matcher.movement.data
    return SessionTrace(
        session_id=matcher.matcher_id,
        shape=matcher.history.shape,
        x=np.asarray(data.x, dtype=np.float64).copy(),
        y=np.asarray(data.y, dtype=np.float64).copy(),
        codes=np.asarray(data.codes, dtype=np.int64).copy(),
        t=np.asarray(data.t, dtype=np.float64).copy(),
        d_rows=np.array([d.row for d in decisions], dtype=np.int64),
        d_cols=np.array([d.col for d in decisions], dtype=np.int64),
        d_conf=np.array([d.confidence for d in decisions], dtype=np.float64),
        d_t=np.array([d.timestamp for d in decisions], dtype=np.float64),
        screen=tuple(matcher.movement.screen),
    )


def merge_traces(
    events: Sequence[SessionTrace], decisions: Sequence[SessionTrace]
) -> list[SessionTrace]:
    """Join event-only traces with decision-only traces by session id.

    The natural composition of a CSV/JSONL mouse-event log with an OAEI
    decision file covering the same matchers: each output trace carries
    the event columns of the first input and the decision columns of the
    second.  Sessions present in only one input pass through unchanged;
    the result is sorted by session id.
    """
    by_id: dict[str, SessionTrace] = {trace.session_id: trace for trace in events}
    for trace in decisions:
        base = by_id.get(trace.session_id)
        if base is None:
            by_id[trace.session_id] = trace
            continue
        shape = (
            max(base.shape[0], trace.shape[0]),
            max(base.shape[1], trace.shape[1]),
        )
        by_id[trace.session_id] = replace(
            base,
            shape=shape,
            d_rows=trace.d_rows,
            d_cols=trace.d_cols,
            d_conf=trace.d_conf,
            d_t=trace.d_t,
        )
    return [by_id[session_id] for session_id in sorted(by_id)]


def trace_fingerprint(traces: Sequence[SessionTrace]) -> str:
    """Keyless blake2b content fingerprint over a whole workload.

    Order-independent across the input sequence (sessions are hashed in
    sorted-id order) and byte-exact over every column, so two workloads
    fingerprint equal iff their traces are bitwise identical.
    """
    digest = hashlib.blake2b(digest_size=16)
    for trace in sorted(traces, key=lambda item: item.session_id):
        digest.update(trace.session_id.encode())
        digest.update(np.asarray(trace.shape, dtype=np.int64).tobytes())
        screen = trace.screen if trace.screen is not None else (-1, -1)
        digest.update(np.asarray(screen, dtype=np.int64).tobytes())
        for column in (trace.x, trace.y, trace.t, trace.d_conf, trace.d_t):
            digest.update(np.ascontiguousarray(column, dtype=np.float64).tobytes())
        for column in (trace.codes, trace.d_rows, trace.d_cols):
            digest.update(np.ascontiguousarray(column, dtype=np.int64).tobytes())
    return digest.hexdigest()


__all__ = [
    "ADAPTER_TRACE_VERSION",
    "DEFAULT_SCREEN",
    "SessionTrace",
    "merge_traces",
    "trace_fingerprint",
    "trace_from_matcher",
]
