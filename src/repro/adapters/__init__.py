"""Ingestion adapters: parse external matcher traces into sessions.

The trust boundary between files written by other people's
instrumentation and the strict streaming core.  A format registry
(:func:`register` / :func:`get_format`) maps source formats — ``csv``
mouse-event logs, full-fidelity ``jsonl`` traces, ``oaei`` alignment/
decision files — onto one shared read driver with per-field schema
validation, row-level quarantine (exact per-reason counters through
:class:`~repro.stream.QuarantineLog`), a configurable recovery policy
(``skip``/``repair``/``abort``), and bounded retry with backoff behind
the ``adapter.read`` fault seam.

Importing the package registers the built-in formats.
"""

from repro.adapters.base import (
    AdapterError,
    DEFAULT_BACKOFF,
    DEFAULT_CLOCK_SKEW,
    DEFAULT_MAX_READ_RETRIES,
    FieldSpec,
    RECOVERY_POLICIES,
    RecordParseError,
    RecordSchema,
    TraceFormat,
    available_formats,
    get_format,
    iter_trace_records,
    parse_source,
    read_source,
    register,
)
from repro.adapters.csv_events import CsvEventFormat
from repro.adapters.jsonl_events import JsonlTraceFormat
from repro.adapters.oaei_decisions import OaeiDecisionFormat
from repro.adapters.records import (
    ADAPTER_TRACE_VERSION,
    DEFAULT_SCREEN,
    SessionTrace,
    merge_traces,
    trace_fingerprint,
    trace_from_matcher,
)

__all__ = [
    "ADAPTER_TRACE_VERSION",
    "AdapterError",
    "CsvEventFormat",
    "DEFAULT_BACKOFF",
    "DEFAULT_CLOCK_SKEW",
    "DEFAULT_MAX_READ_RETRIES",
    "DEFAULT_SCREEN",
    "FieldSpec",
    "JsonlTraceFormat",
    "OaeiDecisionFormat",
    "RECOVERY_POLICIES",
    "RecordParseError",
    "RecordSchema",
    "SessionTrace",
    "TraceFormat",
    "available_formats",
    "get_format",
    "iter_trace_records",
    "merge_traces",
    "parse_source",
    "read_source",
    "register",
    "trace_fingerprint",
    "trace_from_matcher",
]
