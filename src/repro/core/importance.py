"""Feature-importance analysis (Table IV).

The paper uses SHAP to rank features within each feature set.  SHAP is not
available offline, so two model-agnostic substitutes are provided:

* :func:`permutation_importance` -- accuracy drop when a feature column is
  shuffled (fast, the default for Table IV), and
* :func:`shapley_sampling_importance` -- Monte-Carlo Shapley values over
  feature coalitions (slower, used for cross-checking in tests).

Both operate on a fitted binary classifier and a labelled feature matrix, so
they can be applied per expert characteristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.features.base import FeatureBlock
from repro.ml.base import BaseClassifier
from repro.ml.metrics import accuracy_score


def _resolve_features(
    X: np.ndarray | FeatureBlock, feature_names: Optional[Sequence[str]]
) -> tuple[np.ndarray, list[str]]:
    """Accept either a raw matrix + names or a named :class:`FeatureBlock`."""
    if isinstance(X, FeatureBlock):
        features = np.array(X.matrix)
        names = list(feature_names) if feature_names is not None else list(X.names)
    else:
        features = np.asarray(X, dtype=float)
        if feature_names is None:
            raise ValueError("feature_names is required when X is not a FeatureBlock")
        names = list(feature_names)
    if features.shape[1] != len(names):
        raise ValueError("feature_names must have one entry per column of X")
    return features, names


@dataclass
class FeatureImportanceResult:
    """Importance scores for a set of features, sorted descending."""

    feature_names: list[str]
    importances: np.ndarray

    def top(self, k: int = 2) -> list[tuple[str, float]]:
        """The ``k`` most important (name, score) pairs."""
        order = np.argsort(self.importances)[::-1]
        return [(self.feature_names[i], float(self.importances[i])) for i in order[:k]]

    def as_dict(self) -> dict[str, float]:
        return {
            name: float(score) for name, score in zip(self.feature_names, self.importances)
        }


def permutation_importance(
    classifier: BaseClassifier,
    X: np.ndarray | FeatureBlock,
    y: np.ndarray,
    feature_names: Optional[Sequence[str]] = None,
    n_repeats: int = 5,
    random_state: Optional[int] = 0,
) -> FeatureImportanceResult:
    """Mean accuracy drop when each feature is permuted across samples."""
    features, feature_names = _resolve_features(X, feature_names)
    labels = np.asarray(y)
    rng = np.random.default_rng(random_state)
    baseline = accuracy_score(labels, classifier.predict(features))

    importances = np.zeros(features.shape[1])
    for column in range(features.shape[1]):
        drops = []
        for _ in range(n_repeats):
            permuted = features.copy()
            permuted[:, column] = rng.permutation(permuted[:, column])
            score = accuracy_score(labels, classifier.predict(permuted))
            drops.append(baseline - score)
        importances[column] = float(np.mean(drops))
    return FeatureImportanceResult(feature_names=list(feature_names), importances=importances)


def shapley_sampling_importance(
    classifier: BaseClassifier,
    X: np.ndarray | FeatureBlock,
    y: np.ndarray,
    feature_names: Optional[Sequence[str]] = None,
    n_samples: int = 30,
    random_state: Optional[int] = 0,
) -> FeatureImportanceResult:
    """Monte-Carlo Shapley values of each feature's contribution to accuracy.

    For each sampled permutation of the features, a feature's marginal
    contribution is the accuracy change when it is "revealed" (restored to
    its true values) on top of the already revealed prefix; features not yet
    revealed are replaced by their column means (the usual background value).
    """
    features, feature_names = _resolve_features(X, feature_names)
    labels = np.asarray(y)
    n_features = features.shape[1]
    rng = np.random.default_rng(random_state)
    background = features.mean(axis=0)

    def masked_accuracy(revealed: np.ndarray) -> float:
        masked = np.tile(background, (features.shape[0], 1))
        masked[:, revealed] = features[:, revealed]
        return accuracy_score(labels, classifier.predict(masked))

    contributions = np.zeros(n_features)
    for _ in range(n_samples):
        order = rng.permutation(n_features)
        revealed: list[int] = []
        previous_score = masked_accuracy(np.array(revealed, dtype=int))
        for feature in order:
            revealed.append(int(feature))
            score = masked_accuracy(np.array(revealed, dtype=int))
            contributions[feature] += score - previous_score
            previous_score = score
    contributions /= n_samples
    return FeatureImportanceResult(feature_names=list(feature_names), importances=contributions)


def top_features_by_set(
    importance: FeatureImportanceResult,
    set_of_feature,
    k: int = 2,
) -> dict[str, list[tuple[str, float]]]:
    """Group an importance result by feature set and keep the top-``k`` of each.

    ``set_of_feature`` maps a feature name to its feature-set name (usually
    :meth:`repro.core.features.pipeline.FeaturePipeline.feature_set_of`).
    """
    grouped: dict[str, list[tuple[str, float]]] = {}
    for name, score in zip(importance.feature_names, importance.importances):
        grouped.setdefault(set_of_feature(name), []).append((name, float(score)))
    return {
        set_name: sorted(members, key=lambda item: item[1], reverse=True)[:k]
        for set_name, members in grouped.items()
    }
