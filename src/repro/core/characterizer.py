"""The MExI matching-expert characterizer (Section III-B).

Expert identification is cast as a multi-label classification problem and
transformed into one binary problem per characteristic (binary relevance,
following Read et al.).  For each characteristic a bank of classical
classifiers is cross-validated on the training set and the best one is kept
-- mirroring the paper's "trained a set of state-of-the-art classifiers and
selected the top performing classifier".

Training optionally augments the matcher set with sub-matchers
(``MExI_50`` / ``MExI_70``); the neural feature sets are trained on the
augmented set as well, which is exactly why the augmentation helps them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.expert_model import EXPERT_CHARACTERISTICS
from repro.core.features.base import FeatureBlock
from repro.core.features.cache import FeatureBlockCache
from repro.core.features.pipeline import FeaturePipeline, FeatureSetName
from repro.core.submatchers import (
    MEXI_50,
    MEXI_70,
    MEXI_EMPTY,
    SubMatcherConfig,
    generate_submatchers,
)
from repro.matching.matcher import HumanMatcher
from repro.ml.base import BaseClassifier, clone
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LinearSVC, LogisticRegression
from repro.ml.metrics import accuracy_score
from repro.ml.model_selection import KFold
from repro.ml.naive_bayes import GaussianNB
from repro.ml.preprocessing import StandardScaler
from repro.ml.tree import DecisionTreeClassifier


class MExIVariant(enum.Enum):
    """The three training variants evaluated in Table II."""

    EMPTY = "MExI_empty"
    SUB_50 = "MExI_50"
    SUB_70 = "MExI_70"

    @property
    def submatcher_config(self) -> SubMatcherConfig:
        if self is MExIVariant.EMPTY:
            return MEXI_EMPTY
        if self is MExIVariant.SUB_50:
            return MEXI_50
        return MEXI_70


def default_classifier_bank(
    random_state: int = 0, split_search: str = "vectorized"
) -> list[BaseClassifier]:
    """The candidate classifiers MExI selects from, per characteristic.

    ``split_search`` is forwarded to the tree-based candidates; passing
    ``"scalar"`` reproduces the seed implementation's selection cost exactly
    (benchmark baseline) while selecting bitwise-identical classifiers.
    """
    return [
        RandomForestClassifier(
            n_estimators=30, max_depth=6, random_state=random_state, split_search=split_search
        ),
        LogisticRegression(n_iterations=200),
        LinearSVC(n_iterations=200),
        DecisionTreeClassifier(max_depth=5, random_state=random_state, split_search=split_search),
        GaussianNB(),
    ]


class _DefaultClassifierBank:
    """Picklable stand-in for the default ``classifier_bank`` callable.

    A plain lambda would make fitted characterizers unpicklable, breaking
    both ``process``-backend scoring fan-out and artifact bundles.
    """

    def __init__(self, random_state: int) -> None:
        self.random_state = random_state

    def __call__(self) -> list[BaseClassifier]:
        return default_classifier_bank(self.random_state)


class _ScaledFeatures:
    """Standardises a feature matrix once per distinct scaler object.

    The per-label models share one scaler, so prediction scales the matrix
    once instead of once per characteristic.
    """

    def __init__(self, features: np.ndarray) -> None:
        self._features = features
        self._by_scaler: dict[int, np.ndarray] = {}

    def get(self, scaler: StandardScaler) -> np.ndarray:
        key = id(scaler)
        if key not in self._by_scaler:
            self._by_scaler[key] = scaler.transform(self._features)
        return self._by_scaler[key]


@dataclass
class _FittedLabelModel:
    """The selected classifier (and scaler) for a single characteristic."""

    classifier: BaseClassifier
    scaler: StandardScaler
    classifier_name: str
    cv_score: float
    constant_label: Optional[int] = None


class MExICharacterizer:
    """The full MExI model: feature pipeline + per-label classifier selection."""

    def __init__(
        self,
        variant: MExIVariant = MExIVariant.SUB_50,
        feature_sets: Optional[Sequence[FeatureSetName]] = None,
        pipeline: Optional[FeaturePipeline] = None,
        classifier_bank: Optional[Callable[[], list[BaseClassifier]]] = None,
        neural_config: Optional[dict[str, dict]] = None,
        selection_folds: int = 3,
        random_state: int = 0,
        cache: Optional[FeatureBlockCache] = None,
    ) -> None:
        self.variant = variant
        self.random_state = random_state
        self.selection_folds = selection_folds
        if pipeline is not None:
            # A supplied pipeline is caller-owned: never mutate its cache.
            if cache is not None and pipeline.cache is not cache:
                raise ValueError(
                    "pass the cache to the pipeline itself; supplying both a "
                    "pipeline and a different cache is ambiguous"
                )
            self.pipeline = pipeline
        else:
            self.pipeline = FeaturePipeline(
                include=feature_sets,
                neural_config=neural_config,
                random_state=random_state,
                cache=cache,
            )
        self._classifier_bank = classifier_bank or _DefaultClassifierBank(self.random_state)
        self._label_models: list[_FittedLabelModel] = []

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return bool(self._label_models)

    def _augment(
        self, matchers: Sequence[HumanMatcher], label_matrix: np.ndarray
    ) -> tuple[list[HumanMatcher], np.ndarray]:
        """The variant's training augmentation (shared by fit and prewarm)."""
        return generate_submatchers(
            list(matchers), label_matrix, self.variant.submatcher_config
        )

    def prewarm(
        self,
        matchers: Sequence[HumanMatcher],
        labels: np.ndarray,
        predict_matchers: Sequence[HumanMatcher] = (),
    ) -> "MExICharacterizer":
        """Populate the attached cache with everything ``fit``/``predict`` read.

        Runs the exact extraction path of :meth:`fit` (augmentation,
        pipeline fit with its consensus and neural fits, training-block
        extraction) plus the block extraction :meth:`predict` would do for
        ``predict_matchers`` — but trains no classifiers.  Studies fan many
        configurations out over a shared cache after one pre-warm, so
        workers only read it (and process workers receive a complete copy).
        """
        label_matrix = np.asarray(labels, dtype=int)
        augmented, augmented_labels = self._augment(matchers, label_matrix)
        self.pipeline.fit(augmented, augmented_labels)
        self.pipeline.transform_blocks(augmented)
        if len(predict_matchers):
            self.pipeline.transform_blocks(list(predict_matchers))
        return self

    def _select_classifier(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[BaseClassifier, str, float]:
        """Cross-validate the bank and return the best (refitted) classifier."""
        best_score = -1.0
        best_classifier: Optional[BaseClassifier] = None
        n_samples = X.shape[0]
        n_folds = min(self.selection_folds, n_samples)
        for candidate in self._classifier_bank():
            if n_folds >= 2 and np.unique(y).size > 1:
                folds = KFold(n_splits=n_folds, shuffle=True, random_state=self.random_state)
                scores = []
                for train_index, test_index in folds.split(X):
                    if np.unique(y[train_index]).size < 2:
                        scores.append(float(np.mean(y[test_index] == y[train_index][0])))
                        continue
                    model = clone(candidate)
                    model.fit(X[train_index], y[train_index])
                    scores.append(accuracy_score(y[test_index], model.predict(X[test_index])))
                score = float(np.mean(scores))
            else:
                model = clone(candidate)
                model.fit(X, y)
                score = accuracy_score(y, model.predict(X))
            if score > best_score:
                best_score = score
                best_classifier = candidate
        assert best_classifier is not None
        final = clone(best_classifier)
        final.fit(X, y)
        return final, type(best_classifier).__name__, best_score

    def fit(
        self,
        matchers: Sequence[HumanMatcher],
        labels: np.ndarray,
        precomputed: Optional[dict[str, FeatureBlock]] = None,
    ) -> "MExICharacterizer":
        """Train MExI on a labelled training population.

        Args
        ----
        matchers:
            The training population (augmented with sub-matchers per the
            configured :class:`MExIVariant` before feature extraction).
        labels:
            The ``(n_matchers, 4)`` 0/1 matrix of expert labels produced
            by :class:`repro.core.expert_model.ExpertThresholds`.
        precomputed:
            Optional ready-made feature blocks for the *augmented*
            training population (keyed by set name), bypassing extraction
            for those sets.

        Returns
        -------
        MExICharacterizer
            ``self``, fitted (enables chaining).

        Raises
        ------
        ValueError
            If ``labels`` is not an ``(n_matchers, 4)`` matrix aligned
            with ``matchers``, or the training set is empty.
        """
        label_matrix = np.asarray(labels, dtype=int)
        if label_matrix.ndim != 2 or label_matrix.shape[1] != len(EXPERT_CHARACTERISTICS):
            raise ValueError("labels must be an (n_matchers, 4) matrix")
        if label_matrix.shape[0] != len(matchers):
            raise ValueError("labels must have one row per matcher")
        if not matchers:
            raise ValueError("cannot fit MExI on an empty training set")

        augmented, augmented_labels = self._augment(matchers, label_matrix)

        self.pipeline.fit(augmented, augmented_labels)
        features = self.pipeline.transform(augmented, precomputed=precomputed)

        # One scaler serves every characteristic: the features are identical
        # across labels, so fitting it once is exactly equivalent.
        scaler = StandardScaler()
        X = scaler.fit_transform(features)

        self._label_models = []
        for label_index, characteristic in enumerate(EXPERT_CHARACTERISTICS):
            y = augmented_labels[:, label_index].astype(int)
            if np.unique(y).size < 2:
                # Degenerate training label: remember the constant.
                self._label_models.append(
                    _FittedLabelModel(
                        classifier=GaussianNB(),
                        scaler=scaler,
                        classifier_name="constant",
                        cv_score=1.0,
                        constant_label=int(y[0]),
                    )
                )
                continue
            classifier, name, score = self._select_classifier(X, y)
            self._label_models.append(
                _FittedLabelModel(
                    classifier=classifier,
                    scaler=scaler,
                    classifier_name=name,
                    cv_score=score,
                )
            )
        return self

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def predict(
        self,
        matchers: Sequence[HumanMatcher],
        precomputed: Optional[dict[str, FeatureBlock]] = None,
    ) -> np.ndarray:
        """Predicted 0/1 label matrix, one row per matcher.

        Args
        ----
        matchers:
            The population to characterize.
        precomputed:
            Optional ready-made feature blocks for ``matchers`` (keyed by
            set name), bypassing extraction — the serving layer passes the
            blocks its workers extracted.

        Returns
        -------
        numpy.ndarray
            ``(n_matchers, 4)`` 0/1 matrix, columns in
            :data:`~repro.core.expert_model.EXPERT_CHARACTERISTICS` order.

        Raises
        ------
        RuntimeError
            If the characterizer has not been fitted.
        """
        return self.characterize(matchers, precomputed=precomputed)[0]

    def predict_proba(
        self,
        matchers: Sequence[HumanMatcher],
        precomputed: Optional[dict[str, FeatureBlock]] = None,
    ) -> np.ndarray:
        """Per-label positive-class probabilities (expertise scores).

        Args and errors mirror :meth:`predict`; the returned
        ``(n_matchers, 4)`` matrix holds the positive-class probability of
        each characteristic (the constant label's value for degenerate
        training labels).
        """
        return self.characterize(matchers, precomputed=precomputed)[1]

    def characterize(
        self,
        matchers: Sequence[HumanMatcher],
        precomputed: Optional[dict[str, FeatureBlock]] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Labels and expertise scores in a single classification pass.

        Equivalent to calling :meth:`predict` and :meth:`predict_proba`
        (bitwise — both derive from the same per-classifier probability
        matrix) but transforms the features and evaluates each selected
        classifier only once, which halves serving-path latency
        (:class:`repro.serve.CharacterizationService` uses this).

        Returns
        -------
        tuple[numpy.ndarray, numpy.ndarray]
            The ``(n_matchers, 4)`` 0/1 label matrix and the
            ``(n_matchers, 4)`` positive-class probability matrix.

        Raises
        ------
        RuntimeError
            If the characterizer has not been fitted.
        """
        if not self.is_fitted:
            raise RuntimeError("MExICharacterizer must be fitted before predicting")
        features = self.pipeline.transform(matchers, precomputed=precomputed)
        scaled = _ScaledFeatures(features)
        predictions = np.zeros((len(matchers), len(EXPERT_CHARACTERISTICS)), dtype=int)
        probabilities = np.zeros((len(matchers), len(EXPERT_CHARACTERISTICS)))
        for label_index, model in enumerate(self._label_models):
            if model.constant_label is not None:
                predictions[:, label_index] = model.constant_label
                probabilities[:, label_index] = float(model.constant_label)
                continue
            X = scaled.get(model.scaler)
            proba = model.classifier.predict_proba(X)
            classes = model.classifier.classes_
            assert classes is not None
            # Exactly BaseClassifier.predict's argmax, applied to the one
            # probability matrix both outputs share.
            predictions[:, label_index] = classes[np.argmax(proba, axis=1)].astype(int)
            positive = np.where(classes == 1)[0]
            if positive.size:
                probabilities[:, label_index] = proba[:, positive[0]]
        return predictions, probabilities

    def selected_classifiers(self) -> dict[str, str]:
        """Which classifier won the selection for each characteristic.

        Returns
        -------
        dict[str, str]
            Characteristic name -> class name of the selected classifier
            (``"constant"`` for degenerate training labels).

        Raises
        ------
        RuntimeError
            If the characterizer has not been fitted.
        """
        if not self.is_fitted:
            raise RuntimeError("MExICharacterizer must be fitted first")
        return {
            characteristic: model.classifier_name
            for characteristic, model in zip(EXPERT_CHARACTERISTICS, self._label_models)
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path) -> None:
        """Persist the fitted model as a versioned artifact bundle at ``path``.

        Delegates to :func:`repro.serve.save_model`; the resulting bundle
        (``manifest.json`` + ``arrays.npz``) round-trips through
        :meth:`load` / :func:`repro.serve.load_model` to bitwise-identical
        predictions.

        Raises
        ------
        repro.serve.ArtifactError
            If the characterizer has not been fitted.
        """
        from repro.serve.artifacts import save_model

        save_model(self, path)

    @classmethod
    def load(cls, path) -> "MExICharacterizer":
        """Load a characterizer saved with :meth:`save`.

        Raises
        ------
        repro.serve.ArtifactError
            If the bundle is missing, corrupt, of an unsupported format
            version, or does not contain a :class:`MExICharacterizer`.
        """
        from repro.serve.artifacts import ArtifactError, load_model

        model = load_model(path)
        if not isinstance(model, cls):
            raise ArtifactError(
                f"bundle at {path} contains a {type(model).__name__}, not a {cls.__name__}"
            )
        return model

    def __repr__(self) -> str:
        return (
            f"MExICharacterizer(variant={self.variant.value}, "
            f"feature_sets={self.pipeline.include}, fitted={self.is_fitted})"
        )
