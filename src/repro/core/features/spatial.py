"""Phi_Spa(G): CNN label coefficients over the four mouse heat maps.

The paper trains one convolutional network per heat-map type -- move
(``G_empty``), left click (``G_l``), right click (``G_r``) and scrolling
(``G_s``) -- fine-tuning a pre-trained backbone, and fuses the predicted
label coefficients as features.  Here each network is a small CNN
pre-trained on a synthetic screen-region task (see
:mod:`repro.nn.pretrained`) and fine-tuned on the training matchers' heat
maps; its four sigmoid outputs become the Phi_Spa features.  Extraction
runs one batched forward pass per channel over the whole population.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

from repro.core.expert_model import EXPERT_CHARACTERISTICS
from repro.core.features.base import FeatureBlock, FeatureExtractor
from repro.matching.matcher import HumanMatcher
from repro.matching.mouse import MouseEventType
from repro.nn.conv import Conv2D, GlobalAveragePooling2D, MaxPool2D
from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.losses import BinaryCrossEntropy
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.nn.pretrained import HEATMAP_INPUT_SHAPE, pretrain_on_synthetic_regions

#: Short names for the four heat-map channels, matching the paper's notation.
HEATMAP_CHANNELS: dict[str, MouseEventType] = {
    "move": MouseEventType.MOVE,
    "lclick": MouseEventType.LEFT_CLICK,
    "rclick": MouseEventType.RIGHT_CLICK,
    "scroll": MouseEventType.SCROLL,
}


def _multilabel_head(n_filters: int, seed: Optional[int]) -> Sequential:
    """The CNN architecture used per heat-map channel (4-unit sigmoid head)."""
    network = Sequential(
        [
            Conv2D(1, n_filters, kernel_size=3, seed=seed),
            ReLU(),
            MaxPool2D(pool_size=2),
            Conv2D(n_filters, n_filters * 2, kernel_size=3, seed=None if seed is None else seed + 1),
            ReLU(),
            GlobalAveragePooling2D(),
            Dense(n_filters * 2, 16, seed=None if seed is None else seed + 2),
            ReLU(),
            Dense(16, len(EXPERT_CHARACTERISTICS), seed=None if seed is None else seed + 3),
            Sigmoid(),
        ]
    )
    network.compile(loss=BinaryCrossEntropy(), optimizer=Adam(learning_rate=0.003))
    return network


class SpatialFeatures(FeatureExtractor):
    """CNN-derived label coefficients, one group per heat-map channel."""

    set_name = "spa"
    requires_fitting = True

    def __init__(
        self,
        input_shape: tuple[int, int] = HEATMAP_INPUT_SHAPE,
        n_filters: int = 4,
        epochs: int = 4,
        pretrain: bool = True,
        pretrain_samples: int = 48,
        random_state: Optional[int] = 0,
    ) -> None:
        self.input_shape = input_shape
        self.n_filters = n_filters
        self.epochs = epochs
        self.pretrain = pretrain
        self.pretrain_samples = pretrain_samples
        self.random_state = random_state
        self._networks: dict[str, Sequential] = {}
        self._fit_fingerprint: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Heat-map encoding
    # ------------------------------------------------------------------ #

    def _heatmap_tensor(self, matcher: HumanMatcher, event_type: MouseEventType) -> np.ndarray:
        """One matcher's heat map of ``event_type`` as a normalised (H, W, 1) tensor."""
        heat_map = matcher.movement.heat_map(event_type=event_type, shape=self.input_shape)
        normalized = heat_map.normalized()
        return normalized[..., np.newaxis]

    def _batch(self, matchers: Sequence[HumanMatcher], event_type: MouseEventType) -> np.ndarray:
        return np.stack([self._heatmap_tensor(matcher, event_type) for matcher in matchers])

    # ------------------------------------------------------------------ #
    # Training / extraction
    # ------------------------------------------------------------------ #

    def _pretrain_head_on_regions(self, seed: Optional[int]) -> Sequential:
        """Build a channel network, optionally warm-starting its conv trunk."""
        network = _multilabel_head(self.n_filters, seed)
        if not self.pretrain:
            return network
        # Pre-train a single-output clone on the synthetic region task and
        # copy the convolutional trunk's weights (transfer learning).
        from repro.nn.pretrained import build_heatmap_cnn

        donor = build_heatmap_cnn(self.input_shape, n_filters=self.n_filters, seed=seed)
        pretrain_on_synthetic_regions(
            donor,
            n_samples=self.pretrain_samples,
            epochs=2,
            input_shape=self.input_shape,
            random_state=self.random_state,
        )
        # Copy weights of the shared trunk: Conv2D / Conv2D layers (indices 0 and 3).
        for layer_index in (0, 3):
            for name, value in donor.layers[layer_index].params.items():
                network.layers[layer_index].params[name][...] = value
        return network

    def fit(
        self, matchers: Sequence[HumanMatcher], labels: np.ndarray | None = None
    ) -> "SpatialFeatures":
        """Fine-tune one CNN per heat-map channel on the training matchers."""
        if labels is None:
            raise ValueError("SpatialFeatures.fit requires the training label matrix")
        label_matrix = np.asarray(labels, dtype=float)
        if label_matrix.shape[0] != len(matchers):
            raise ValueError("labels must have one row per matcher")
        self._fit_fingerprint = self.fit_fingerprint(matchers, label_matrix)

        self._networks = {}
        for channel_index, (channel, event_type) in enumerate(HEATMAP_CHANNELS.items()):
            seed = None if self.random_state is None else self.random_state + 10 * channel_index
            network = self._pretrain_head_on_regions(seed)
            batch = self._batch(matchers, event_type)
            network.fit(
                batch,
                label_matrix,
                epochs=self.epochs,
                batch_size=16,
                random_state=seed,
            )
            self._networks[channel] = network
        return self

    def feature_names(self) -> list[str]:
        return [
            self._prefixed(f"{channel}_{characteristic}")
            for channel in HEATMAP_CHANNELS
            for characteristic in EXPERT_CHARACTERISTICS
        ]

    def extract_batch(self, matchers: Sequence[HumanMatcher]) -> FeatureBlock:
        if not self._networks:
            raise RuntimeError("SpatialFeatures must be fitted before extraction")
        names = self.feature_names()
        if not matchers:
            return FeatureBlock(names, np.zeros((0, len(names))))
        columns = []
        for channel, event_type in HEATMAP_CHANNELS.items():
            network = self._networks[channel]
            batch = self._batch(matchers, event_type)
            columns.append(network.predict(batch))
        return FeatureBlock(names, np.hstack(columns))

    # ------------------------------------------------------------------ #
    # Cache fingerprints
    # ------------------------------------------------------------------ #

    def _hyper_fingerprint(self) -> str:
        return (
            f"SpatialFeatures:shape={self.input_shape},f={self.n_filters},"
            f"e={self.epochs},pre={self.pretrain},n={self.pretrain_samples},"
            f"seed={self.random_state}"
        )

    def fit_fingerprint(self, matchers: Sequence[HumanMatcher], labels: np.ndarray) -> str:
        """Digest of everything :meth:`fit` depends on (see SequentialFeatures)."""
        from repro.core.features.cache import array_fingerprint, population_fingerprint

        raw = "|".join(
            (
                self._hyper_fingerprint(),
                population_fingerprint(matchers),
                array_fingerprint(labels),
            )
        )
        return hashlib.blake2b(raw.encode(), digest_size=16).hexdigest()

    def config_fingerprint(self) -> str:
        if self._fit_fingerprint is None:
            return f"{self._hyper_fingerprint()}:unfitted"
        return f"SpatialFeatures:fit={self._fit_fingerprint}"
