"""Phi_Seq(H): LSTM label coefficients over the sequential decision process.

Per decision, the sequence carries three channels (Section III-B):

* the declared confidence ``h_k.c``,
* the time spent until reaching the decision ``h_k.t - h_{k-1}.t``,
* the agreement ``pi_k`` of the training population on the decided pair.

The network follows the paper's architecture (an LSTM hidden layer, dropout,
a dense ReLU layer) with a 4-unit sigmoid head -- one coefficient per expert
characteristic.  During training the network is fitted on the training
matchers (and their sub-matchers); at extraction time a single batched
forward pass over the whole population yields the Phi_Seq coefficients
(late fusion).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

from repro.core.features.base import FeatureBlock, FeatureExtractor
from repro.core.features.consensus import ConsensusModel
from repro.core.expert_model import EXPERT_CHARACTERISTICS
from repro.matching.matcher import HumanMatcher
from repro.nn.layers import Dense, Dropout, ReLU, Sigmoid
from repro.nn.losses import BinaryCrossEntropy
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.nn.recurrent import LSTM, pad_sequences


class SequentialFeatures(FeatureExtractor):
    """LSTM-derived label coefficients over the decision sequence."""

    set_name = "seq"
    requires_fitting = True

    def __init__(
        self,
        hidden_dim: int = 16,
        dense_dim: int = 24,
        max_sequence_length: int = 40,
        epochs: int = 8,
        learning_rate: float = 0.005,
        dropout: float = 0.3,
        random_state: Optional[int] = 0,
        consensus: Optional[ConsensusModel] = None,
    ) -> None:
        self.hidden_dim = hidden_dim
        self.dense_dim = dense_dim
        self.max_sequence_length = max_sequence_length
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.dropout = dropout
        self.random_state = random_state
        self.consensus = consensus
        self._network: Optional[Sequential] = None
        self._fit_fingerprint: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Sequence encoding
    # ------------------------------------------------------------------ #

    def _sequence_for(self, matcher: HumanMatcher) -> np.ndarray:
        """The (T, 3) channel matrix for one matcher."""
        history = matcher.history
        if history.is_empty:
            return np.zeros((1, 3))
        confidences = history.confidences()
        times = history.inter_decision_times()
        # Normalise elapsed times to a comparable scale across matchers.
        time_scale = times.max() if times.size and times.max() > 0 else 1.0
        normalized_times = times / time_scale
        if self.consensus is not None and self.consensus.is_fitted:
            agreements = np.array(self.consensus.history_agreement(history))
        else:
            agreements = np.zeros_like(confidences)
        return np.column_stack([confidences, normalized_times, agreements])

    def _batch(self, matchers: Sequence[HumanMatcher]) -> np.ndarray:
        sequences = [self._sequence_for(matcher) for matcher in matchers]
        return pad_sequences(sequences, max_length=self.max_sequence_length)

    # ------------------------------------------------------------------ #
    # Training / extraction
    # ------------------------------------------------------------------ #

    def _build_network(self) -> Sequential:
        seed = self.random_state
        network = Sequential(
            [
                LSTM(input_dim=3, hidden_dim=self.hidden_dim, seed=seed),
                Dropout(rate=self.dropout, seed=seed),
                Dense(self.hidden_dim, self.dense_dim, seed=None if seed is None else seed + 1),
                ReLU(),
                Dense(self.dense_dim, len(EXPERT_CHARACTERISTICS), seed=None if seed is None else seed + 2),
                Sigmoid(),
            ]
        )
        network.compile(loss=BinaryCrossEntropy(), optimizer=Adam(learning_rate=self.learning_rate))
        return network

    def fit(
        self, matchers: Sequence[HumanMatcher], labels: np.ndarray | None = None
    ) -> "SequentialFeatures":
        """Train the sequence network on the training matchers and their labels."""
        if labels is None:
            raise ValueError("SequentialFeatures.fit requires the training label matrix")
        label_matrix = np.asarray(labels, dtype=float)
        if label_matrix.ndim != 2 or label_matrix.shape[1] != len(EXPERT_CHARACTERISTICS):
            raise ValueError("labels must be an (n_matchers, 4) matrix")
        if label_matrix.shape[0] != len(matchers):
            raise ValueError("labels must have one row per matcher")
        if self.consensus is None:
            self.consensus = ConsensusModel().fit(matchers)
        self._fit_fingerprint = self.fit_fingerprint(matchers, label_matrix)

        batch = self._batch(matchers)
        self._network = self._build_network()
        self._network.fit(
            batch,
            label_matrix,
            epochs=self.epochs,
            batch_size=16,
            random_state=self.random_state,
        )
        return self

    def feature_names(self) -> list[str]:
        return [self._prefixed(f"coef_{c}") for c in EXPERT_CHARACTERISTICS]

    def extract_batch(self, matchers: Sequence[HumanMatcher]) -> FeatureBlock:
        if self._network is None:
            raise RuntimeError("SequentialFeatures must be fitted before extraction")
        names = self.feature_names()
        if not matchers:
            return FeatureBlock(names, np.zeros((0, len(names))))
        coefficients = self._network.predict(self._batch(matchers))
        return FeatureBlock(names, coefficients)

    # ------------------------------------------------------------------ #
    # Cache fingerprints
    # ------------------------------------------------------------------ #

    def _hyper_fingerprint(self) -> str:
        return (
            f"SequentialFeatures:h={self.hidden_dim},d={self.dense_dim},"
            f"T={self.max_sequence_length},e={self.epochs},lr={self.learning_rate!r},"
            f"p={self.dropout!r},seed={self.random_state}"
        )

    def fit_fingerprint(self, matchers: Sequence[HumanMatcher], labels: np.ndarray) -> str:
        """Digest of everything :meth:`fit` depends on.

        Training is deterministic given the population, labels,
        hyper-parameters, seed and consensus model, so equal fingerprints
        guarantee bitwise-identical trained networks.
        """
        from repro.core.features.cache import array_fingerprint, population_fingerprint

        consensus = self.consensus.fingerprint() if self.consensus is not None else "fit-on-train"
        raw = "|".join(
            (
                self._hyper_fingerprint(),
                consensus,
                population_fingerprint(matchers),
                array_fingerprint(labels),
            )
        )
        return hashlib.blake2b(raw.encode(), digest_size=16).hexdigest()

    def config_fingerprint(self) -> str:
        if self._fit_fingerprint is None:
            return f"{self._hyper_fingerprint()}:unfitted"
        return f"SequentialFeatures:fit={self._fit_fingerprint}"
