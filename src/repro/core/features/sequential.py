"""Phi_Seq(H): LSTM label coefficients over the sequential decision process.

Per decision, the sequence carries three channels (Section III-B):

* the declared confidence ``h_k.c``,
* the time spent until reaching the decision ``h_k.t - h_{k-1}.t``,
* the agreement ``pi_k`` of the training population on the decided pair.

The network follows the paper's architecture (an LSTM hidden layer, dropout,
a dense ReLU layer) with a 4-unit sigmoid head -- one coefficient per expert
characteristic.  During training the network is fitted on the training
matchers (and their sub-matchers); at extraction time its four output
coefficients become the Phi_Seq features (late fusion).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.features.base import FeatureExtractor, FeatureVector
from repro.core.features.consensus import ConsensusModel
from repro.core.expert_model import EXPERT_CHARACTERISTICS
from repro.matching.matcher import HumanMatcher
from repro.nn.layers import Dense, Dropout, ReLU, Sigmoid
from repro.nn.losses import BinaryCrossEntropy
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.nn.recurrent import LSTM, pad_sequences


class SequentialFeatures(FeatureExtractor):
    """LSTM-derived label coefficients over the decision sequence."""

    set_name = "seq"
    requires_fitting = True

    def __init__(
        self,
        hidden_dim: int = 16,
        dense_dim: int = 24,
        max_sequence_length: int = 40,
        epochs: int = 8,
        learning_rate: float = 0.005,
        dropout: float = 0.3,
        random_state: Optional[int] = 0,
        consensus: Optional[ConsensusModel] = None,
    ) -> None:
        self.hidden_dim = hidden_dim
        self.dense_dim = dense_dim
        self.max_sequence_length = max_sequence_length
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.dropout = dropout
        self.random_state = random_state
        self.consensus = consensus
        self._network: Optional[Sequential] = None

    # ------------------------------------------------------------------ #
    # Sequence encoding
    # ------------------------------------------------------------------ #

    def _sequence_for(self, matcher: HumanMatcher) -> np.ndarray:
        """The (T, 3) channel matrix for one matcher."""
        history = matcher.history
        if history.is_empty:
            return np.zeros((1, 3))
        confidences = history.confidences()
        times = history.inter_decision_times()
        # Normalise elapsed times to a comparable scale across matchers.
        time_scale = times.max() if times.size and times.max() > 0 else 1.0
        normalized_times = times / time_scale
        if self.consensus is not None and self.consensus.is_fitted:
            agreements = np.array(self.consensus.history_agreement(history))
        else:
            agreements = np.zeros_like(confidences)
        return np.column_stack([confidences, normalized_times, agreements])

    def _batch(self, matchers: Sequence[HumanMatcher]) -> np.ndarray:
        sequences = [self._sequence_for(matcher) for matcher in matchers]
        return pad_sequences(sequences, max_length=self.max_sequence_length)

    # ------------------------------------------------------------------ #
    # Training / extraction
    # ------------------------------------------------------------------ #

    def _build_network(self) -> Sequential:
        seed = self.random_state
        network = Sequential(
            [
                LSTM(input_dim=3, hidden_dim=self.hidden_dim, seed=seed),
                Dropout(rate=self.dropout, seed=seed),
                Dense(self.hidden_dim, self.dense_dim, seed=None if seed is None else seed + 1),
                ReLU(),
                Dense(self.dense_dim, len(EXPERT_CHARACTERISTICS), seed=None if seed is None else seed + 2),
                Sigmoid(),
            ]
        )
        network.compile(loss=BinaryCrossEntropy(), optimizer=Adam(learning_rate=self.learning_rate))
        return network

    def fit(
        self, matchers: Sequence[HumanMatcher], labels: np.ndarray | None = None
    ) -> "SequentialFeatures":
        """Train the sequence network on the training matchers and their labels."""
        if labels is None:
            raise ValueError("SequentialFeatures.fit requires the training label matrix")
        label_matrix = np.asarray(labels, dtype=float)
        if label_matrix.ndim != 2 or label_matrix.shape[1] != len(EXPERT_CHARACTERISTICS):
            raise ValueError("labels must be an (n_matchers, 4) matrix")
        if label_matrix.shape[0] != len(matchers):
            raise ValueError("labels must have one row per matcher")
        if self.consensus is None:
            self.consensus = ConsensusModel().fit(matchers)

        batch = self._batch(matchers)
        self._network = self._build_network()
        self._network.fit(
            batch,
            label_matrix,
            epochs=self.epochs,
            batch_size=16,
            random_state=self.random_state,
        )
        return self

    def extract(self, matcher: HumanMatcher) -> FeatureVector:
        if self._network is None:
            raise RuntimeError("SequentialFeatures must be fitted before extraction")
        batch = self._batch([matcher])
        coefficients = self._network.predict(batch)[0]
        features = FeatureVector()
        for characteristic, coefficient in zip(EXPERT_CHARACTERISTICS, coefficients):
            features.set(self._prefixed(f"coef_{characteristic}"), float(coefficient))
        return features
