"""The full feature encoding Phi(D) with the paper's late-fusion strategy.

During training the pipeline first fits the offline feature sets (which only
need the training population for the consensuality model), then trains the
neural feature sets (Phi_Seq, Phi_Spa) on the training matchers and their
labels; their predicted label coefficients are appended as features.  During
testing the trained networks are applied to new matchers and the five sets
are concatenated into a single feature vector (Section III-B, Figure 7).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.features.base import FeatureExtractor, FeatureVector
from repro.core.features.behavioral import BehavioralFeatures
from repro.core.features.consensus import ConsensusModel
from repro.core.features.mouse import MouseFeatures
from repro.core.features.predictors import LRSMFeatures
from repro.core.features.sequential import SequentialFeatures
from repro.core.features.spatial import SpatialFeatures
from repro.matching.matcher import HumanMatcher

#: The five feature-set names, in the paper's presentation order.
FEATURE_SET_NAMES: tuple[str, ...] = ("lrsm", "beh", "mou", "seq", "spa")

#: Alias kept for readability of signatures.
FeatureSetName = str


class FeaturePipeline:
    """Extracts and fuses the five MExI feature sets.

    Parameters
    ----------
    include:
        Feature sets to use (default: all five).  The ablation study of
        Table III passes singletons (include mode) or four-element subsets
        (exclude mode).
    neural_config:
        Optional keyword arguments for the neural extractors, keyed by set
        name (``"seq"`` / ``"spa"``).  Benchmarks use this to shrink the
        networks.
    random_state:
        Seed forwarded to the neural extractors.
    """

    def __init__(
        self,
        include: Optional[Sequence[FeatureSetName]] = None,
        neural_config: Optional[dict[str, dict]] = None,
        random_state: Optional[int] = 0,
    ) -> None:
        selected = tuple(include) if include is not None else FEATURE_SET_NAMES
        unknown = set(selected) - set(FEATURE_SET_NAMES)
        if unknown:
            raise ValueError(f"unknown feature sets: {sorted(unknown)}")
        if not selected:
            raise ValueError("at least one feature set must be included")
        self.include = tuple(name for name in FEATURE_SET_NAMES if name in selected)
        self.random_state = random_state
        neural_config = neural_config or {}

        self._extractors: dict[str, FeatureExtractor] = {}
        if "lrsm" in self.include:
            self._extractors["lrsm"] = LRSMFeatures()
        if "beh" in self.include:
            self._extractors["beh"] = BehavioralFeatures()
        if "mou" in self.include:
            self._extractors["mou"] = MouseFeatures()
        if "seq" in self.include:
            self._extractors["seq"] = SequentialFeatures(
                random_state=random_state, **neural_config.get("seq", {})
            )
        if "spa" in self.include:
            self._extractors["spa"] = SpatialFeatures(
                random_state=random_state, **neural_config.get("spa", {})
            )

        self.feature_names_: list[str] = []
        self._fitted = False

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(
        self, matchers: Sequence[HumanMatcher], labels: Optional[np.ndarray] = None
    ) -> "FeaturePipeline":
        """Fit the pipeline on the training population (and its labels).

        ``labels`` is required whenever a neural feature set is included,
        because Phi_Seq / Phi_Spa are supervised feature extractors.
        """
        if not matchers:
            raise ValueError("cannot fit a feature pipeline on an empty population")
        needs_labels = any(name in self.include for name in ("seq", "spa"))
        if needs_labels and labels is None:
            raise ValueError("labels are required to fit the neural feature sets")

        consensus = ConsensusModel().fit(matchers)
        if "beh" in self._extractors:
            behavioral = self._extractors["beh"]
            assert isinstance(behavioral, BehavioralFeatures)
            behavioral.consensus = consensus
        if "seq" in self._extractors:
            sequential = self._extractors["seq"]
            assert isinstance(sequential, SequentialFeatures)
            sequential.consensus = consensus

        for name in ("seq", "spa"):
            if name in self._extractors:
                self._extractors[name].fit(matchers, labels)

        # Determine the fused feature-name order from the first matcher.
        sample_vector = self._extract_fused(matchers[0])
        self.feature_names_ = sample_vector.names()
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    # Transformation
    # ------------------------------------------------------------------ #

    def _extract_fused(self, matcher: HumanMatcher) -> FeatureVector:
        fused = FeatureVector()
        for name in self.include:
            fused.update(self._extractors[name].extract(matcher))
        return fused

    def transform(self, matchers: Sequence[HumanMatcher]) -> np.ndarray:
        """Feature matrix for ``matchers``, columns ordered as ``feature_names_``."""
        if not self._fitted:
            raise RuntimeError("FeaturePipeline must be fitted before transform")
        rows = [self._extract_fused(matcher).to_array(self.feature_names_) for matcher in matchers]
        if not rows:
            return np.zeros((0, len(self.feature_names_)))
        return np.vstack(rows)

    def fit_transform(
        self, matchers: Sequence[HumanMatcher], labels: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return self.fit(matchers, labels).transform(matchers)

    def feature_set_of(self, feature_name: str) -> FeatureSetName:
        """The feature set a fused feature name belongs to (by prefix)."""
        for set_name in FEATURE_SET_NAMES:
            if feature_name.startswith(f"{set_name}_"):
                return set_name
        raise ValueError(f"feature {feature_name!r} does not belong to a known feature set")

    def __repr__(self) -> str:
        return f"FeaturePipeline(include={self.include}, fitted={self._fitted})"
