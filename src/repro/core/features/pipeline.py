"""The full feature encoding Phi(D) with the paper's late-fusion strategy.

During training the pipeline first fits the offline feature sets (which only
need the training population for the consensuality model), then trains the
neural feature sets (Phi_Seq, Phi_Spa) on the training matchers and their
labels; their predicted label coefficients are appended as features.  During
testing the trained networks are applied to new matchers and the five sets
are concatenated into a single feature vector (Section III-B, Figure 7).

The pipeline is batch-first: each feature set produces one
:class:`~repro.core.features.base.FeatureBlock` for the whole population and
``transform`` ``hstack``s the per-set blocks.  When a
:class:`~repro.core.features.cache.FeatureBlockCache` is attached, blocks
are reused across configurations (the offline sets are pure functions of
the population, and the neural sets are keyed by their exact training
inputs), so studies that evaluate many feature-set subsets — the Table III
ablation, Table IV importance, Tables IIa/IIb — extract each block once.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.features.base import FeatureBlock, FeatureExtractor, FeatureVector
from repro.core.features.behavioral import BehavioralFeatures
from repro.core.features.cache import FeatureBlockCache, population_fingerprint
from repro.core.features.consensus import ConsensusModel
from repro.core.features.mouse import MouseFeatures
from repro.core.features.predictors import LRSMFeatures
from repro.core.features.sequential import SequentialFeatures
from repro.core.features.spatial import SpatialFeatures
from repro.matching.matcher import HumanMatcher

#: The five feature-set names, in the paper's presentation order.
FEATURE_SET_NAMES: tuple[str, ...] = ("lrsm", "beh", "mou", "seq", "spa")

#: The sets that need no label supervision (pure functions of the population
#: plus, for ``beh``, the training consensus model).
OFFLINE_SET_NAMES: tuple[str, ...] = ("lrsm", "beh", "mou")

#: The supervised (neural) sets, refitted per training configuration.
NEURAL_SET_NAMES: tuple[str, ...] = ("seq", "spa")

#: Alias kept for readability of signatures.
FeatureSetName = str

#: Extractor class per supervised (neural) set name.
_NEURAL_CLASSES = {"seq": SequentialFeatures, "spa": SpatialFeatures}


class _NeuralFactory:
    """A picklable factory producing pristine neural extractors.

    Replaces the historical per-pipeline lambdas so that fitted pipelines
    (and the characterizers and services wrapping them) can travel to
    ``process``-backend :class:`repro.runtime.TaskRunner` workers and into
    :mod:`repro.serve` artifact bundles.
    """

    def __init__(self, set_name: str, random_state: Optional[int], kwargs: dict) -> None:
        self.set_name = set_name
        self.random_state = random_state
        self.kwargs = dict(kwargs)

    def __call__(self):
        return _NEURAL_CLASSES[self.set_name](random_state=self.random_state, **self.kwargs)


class FeaturePipeline:
    """Extracts and fuses the five MExI feature sets.

    Parameters
    ----------
    include:
        Feature sets to use (default: all five).  The ablation study of
        Table III passes singletons (include mode) or four-element subsets
        (exclude mode).
    neural_config:
        Optional keyword arguments for the neural extractors, keyed by set
        name (``"seq"`` / ``"spa"``).  Benchmarks use this to shrink the
        networks.
    random_state:
        Seed forwarded to the neural extractors.
    cache:
        Optional :class:`FeatureBlockCache` shared with other pipelines.
        Blocks (and deterministic neural fits) are reused whenever the
        population and extractor configuration match.
    """

    def __init__(
        self,
        include: Optional[Sequence[FeatureSetName]] = None,
        neural_config: Optional[dict[str, dict]] = None,
        random_state: Optional[int] = 0,
        cache: Optional[FeatureBlockCache] = None,
    ) -> None:
        selected = tuple(include) if include is not None else FEATURE_SET_NAMES
        unknown = set(selected) - set(FEATURE_SET_NAMES)
        if unknown:
            raise ValueError(f"unknown feature sets: {sorted(unknown)}")
        if not selected:
            raise ValueError("at least one feature set must be included")
        self.include = tuple(name for name in FEATURE_SET_NAMES if name in selected)
        self.random_state = random_state
        self.cache = cache
        #: Neural-extractor keyword arguments, kept for introspection and
        #: artifact serialization (:mod:`repro.serve.artifacts`).
        self.neural_config: dict[str, dict] = {
            name: dict(kwargs) for name, kwargs in (neural_config or {}).items()
        }

        self._extractors: dict[str, FeatureExtractor] = {}
        #: Factories for pristine neural extractors.  A cache miss always
        #: fits a *fresh* instance, so fitted extractors stored in a shared
        #: cache are never retrained in place by a later ``fit``.
        self._neural_factories: dict[str, _NeuralFactory] = {}
        if "lrsm" in self.include:
            self._extractors["lrsm"] = LRSMFeatures()
        if "beh" in self.include:
            self._extractors["beh"] = BehavioralFeatures()
        if "mou" in self.include:
            self._extractors["mou"] = MouseFeatures()
        for name in NEURAL_SET_NAMES:
            if name in self.include:
                self._neural_factories[name] = _NeuralFactory(
                    name, random_state, self.neural_config.get(name, {})
                )
                self._extractors[name] = self._neural_factories[name]()

        self.feature_names_: list[str] = []
        self._fitted = False

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _fit_consensus(self, matchers: Sequence[HumanMatcher]) -> ConsensusModel:
        """Fit (or fetch from the cache) the training consensuality model."""
        if self.cache is None:
            return ConsensusModel().fit(matchers)
        key = f"consensus:{population_fingerprint(matchers)}"
        model = self.cache.get_or_fit(key, lambda: ConsensusModel().fit(matchers))
        assert isinstance(model, ConsensusModel)
        return model

    def _fit_neural(
        self,
        name: str,
        matchers: Sequence[HumanMatcher],
        labels: Optional[np.ndarray],
        consensus: ConsensusModel,
    ) -> None:
        """Fit one neural extractor, memoising deterministic fits in the cache.

        Fitting always starts from a *fresh* factory instance: the
        pipeline's previous extractor may live in the shared cache (from an
        earlier hit), so neither retraining it nor re-wiring its consensus
        in place is safe — either would corrupt the cached state for every
        other pipeline sharing it.
        """
        candidate = self._neural_factories[name]()
        if isinstance(candidate, SequentialFeatures):
            candidate.consensus = consensus
        fingerprint_method = getattr(candidate, "fit_fingerprint", None)
        if self.cache is None or fingerprint_method is None or labels is None:
            self._extractors[name] = candidate.fit(matchers, labels)
            return
        label_matrix = np.asarray(labels, dtype=float)
        fit_key = f"{name}:{fingerprint_method(matchers, label_matrix)}"
        fitted = self.cache.get_or_fit(fit_key, lambda: candidate.fit(matchers, labels))
        assert isinstance(fitted, FeatureExtractor)
        self._extractors[name] = fitted

    def fit(
        self, matchers: Sequence[HumanMatcher], labels: Optional[np.ndarray] = None
    ) -> "FeaturePipeline":
        """Fit the pipeline on the training population (and its labels).

        ``labels`` is required whenever a neural feature set is included,
        because Phi_Seq / Phi_Spa are supervised feature extractors.
        """
        if not matchers:
            raise ValueError("cannot fit a feature pipeline on an empty population")
        needs_labels = any(name in self.include for name in NEURAL_SET_NAMES)
        if needs_labels and labels is None:
            raise ValueError("labels are required to fit the neural feature sets")

        consensus = self._fit_consensus(matchers)
        if "beh" in self._extractors:
            behavioral = self._extractors["beh"]
            assert isinstance(behavioral, BehavioralFeatures)
            behavioral.consensus = consensus

        for name in NEURAL_SET_NAMES:
            if name in self._extractors:
                self._fit_neural(name, matchers, labels, consensus)

        self.feature_names_ = []
        for name in self.include:
            self.feature_names_.extend(self._set_names(name, matchers))
        self._fitted = True
        return self

    def _set_names(self, name: str, matchers: Sequence[HumanMatcher]) -> list[str]:
        """The feature names of one set, without extracting the population."""
        extractor = self._extractors[name]
        names_method = getattr(extractor, "feature_names", None)
        if names_method is not None:
            return list(names_method())
        # Generic extractors: derive names from a single-matcher batch.
        return list(extractor.extract_batch(list(matchers)[:1]).names)

    # ------------------------------------------------------------------ #
    # Transformation
    # ------------------------------------------------------------------ #

    def transform_blocks(
        self,
        matchers: Sequence[HumanMatcher],
        precomputed: Optional[dict[str, FeatureBlock]] = None,
    ) -> dict[str, FeatureBlock]:
        """Per-set feature blocks for ``matchers``, keyed by set name.

        ``precomputed`` blocks (e.g. shared by a study driver) short-circuit
        extraction for their sets; the remaining sets go through the cache
        when one is attached.
        """
        if not self._fitted:
            raise RuntimeError("FeaturePipeline must be fitted before transform")
        blocks: dict[str, FeatureBlock] = {}
        for name in self.include:
            if precomputed is not None and name in precomputed:
                block = precomputed[name]
                if block.n_matchers != len(matchers):
                    raise ValueError(
                        f"precomputed block for {name!r} has {block.n_matchers} rows "
                        f"for a population of {len(matchers)}"
                    )
            else:
                extractor = self._extractors[name]
                if self.cache is not None:
                    block = self.cache.get_or_compute(
                        name,
                        matchers,
                        extractor.config_fingerprint(),
                        lambda extractor=extractor: extractor.extract_batch(matchers),
                    )
                else:
                    block = extractor.extract_batch(matchers)
            blocks[name] = block
        return blocks

    def store_blocks(
        self, matchers: Sequence[HumanMatcher], blocks: dict[str, FeatureBlock]
    ) -> None:
        """Insert externally extracted blocks into the attached cache.

        The serving layer extracts blocks in parallel workers; with the
        ``process`` backend, worker-side cache insertions die with the
        pool, so the parent re-inserts the returned blocks here to keep
        cache warmth backend-independent.  A no-op without a cache; an
        existing entry wins (both copies are bitwise identical).

        Raises
        ------
        ValueError
            If a block's row count does not match ``matchers``.
        """
        if self.cache is None:
            return
        for name, block in blocks.items():
            if name not in self._extractors:
                continue
            self.cache.get_or_compute(
                name,
                matchers,
                self._extractors[name].config_fingerprint(),
                lambda block=block: block,
            )

    def transform(
        self,
        matchers: Sequence[HumanMatcher],
        precomputed: Optional[dict[str, FeatureBlock]] = None,
    ) -> np.ndarray:
        """Feature matrix for ``matchers``, columns ordered as ``feature_names_``."""
        blocks = self.transform_blocks(matchers, precomputed)
        fused = FeatureBlock.hstack([blocks[name] for name in self.include])
        if list(fused.names) != self.feature_names_:
            # Defensive: a subclassed extractor may order names differently
            # between fit and transform; reindex by name.
            index = {name: column for column, name in enumerate(fused.names)}
            order = [index[name] for name in self.feature_names_]
            return np.array(fused.matrix[:, order])
        return np.array(fused.matrix)

    def fit_transform(
        self, matchers: Sequence[HumanMatcher], labels: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return self.fit(matchers, labels).transform(matchers)

    def extract_one(self, matcher: HumanMatcher) -> FeatureVector:
        """The fused feature vector of a single matcher (compatibility shim)."""
        row = self.transform([matcher])[0]
        return FeatureVector(dict(zip(self.feature_names_, row)))

    def feature_set_of(self, feature_name: str) -> FeatureSetName:
        """The feature set a fused feature name belongs to (by prefix)."""
        for set_name in FEATURE_SET_NAMES:
            if feature_name.startswith(f"{set_name}_"):
                return set_name
        raise ValueError(f"feature {feature_name!r} does not belong to a known feature set")

    def __repr__(self) -> str:
        return f"FeaturePipeline(include={self.include}, fitted={self._fitted})"
