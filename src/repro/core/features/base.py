"""Feature-extraction protocol shared by the five MExI feature sets."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Sequence

import numpy as np

from repro.matching.matcher import HumanMatcher


class FeatureVector:
    """An ordered mapping of feature name to value.

    Keeping names alongside values lets the ablation (Table III) and
    importance (Table IV) analyses address features and feature sets by
    name instead of positional index.
    """

    def __init__(self, values: Mapping[str, float] | None = None) -> None:
        self._values: dict[str, float] = {}
        if values:
            for name, value in values.items():
                self.set(name, value)

    def set(self, name: str, value: float) -> None:
        """Set a feature, replacing NaN / infinite values with 0."""
        numeric = float(value)
        if not np.isfinite(numeric):
            numeric = 0.0
        self._values[name] = numeric

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def update(self, other: "FeatureVector" | Mapping[str, float]) -> None:
        items = other.items() if isinstance(other, FeatureVector) else other.items()
        for name, value in items:
            self.set(name, value)

    def items(self):
        return self._values.items()

    def names(self) -> list[str]:
        return list(self._values)

    def to_array(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Values as a vector, ordered by ``names`` (or insertion order)."""
        ordered = names if names is not None else self.names()
        return np.array([self.get(name) for name in ordered], dtype=float)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: object) -> bool:
        return name in self._values

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __repr__(self) -> str:
        return f"FeatureVector(n_features={len(self)})"


class FeatureExtractor(ABC):
    """A (possibly trainable) mapping from a human matcher to named features."""

    #: Name of the feature set (e.g. ``"lrsm"``), used as a feature-name prefix.
    set_name: str = "base"
    #: Whether :meth:`fit` must be called before :meth:`extract`.
    requires_fitting: bool = False

    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray | None = None) -> "FeatureExtractor":
        """Learn anything the extractor needs from the training population."""
        return self

    @abstractmethod
    def extract(self, matcher: HumanMatcher) -> FeatureVector:
        """Extract the feature set for one matcher."""

    def extract_many(self, matchers: Sequence[HumanMatcher]) -> list[FeatureVector]:
        return [self.extract(matcher) for matcher in matchers]

    def _prefixed(self, name: str) -> str:
        return f"{self.set_name}_{name}"
