"""Feature-extraction protocol shared by the five MExI feature sets.

The extraction stack is *batch-first*: every extractor implements
:meth:`FeatureExtractor.extract_batch`, which maps a whole population of
matchers to a :class:`FeatureBlock` (named columns over an
``(n_matchers, n_features)`` matrix).  The scalar :meth:`FeatureExtractor.extract`
is a thin compatibility shim over the batch path, so there is a single
extraction code path for tests, experiments and production serving alike.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Sequence

import numpy as np

from repro.matching.matcher import HumanMatcher


class FeatureVector:
    """An ordered mapping of feature name to value.

    Keeping names alongside values lets the ablation (Table III) and
    importance (Table IV) analyses address features and feature sets by
    name instead of positional index.
    """

    def __init__(self, values: Mapping[str, float] | None = None) -> None:
        self._values: dict[str, float] = {}
        if values:
            for name, value in values.items():
                self.set(name, value)

    def set(self, name: str, value: float) -> None:
        """Set a feature, replacing NaN / infinite values with 0."""
        numeric = float(value)
        if not np.isfinite(numeric):
            numeric = 0.0
        self._values[name] = numeric

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def update(self, other: "FeatureVector" | Mapping[str, float]) -> None:
        items = other.items() if isinstance(other, FeatureVector) else other.items()
        for name, value in items:
            self.set(name, value)

    def items(self):
        return self._values.items()

    def names(self) -> list[str]:
        return list(self._values)

    def to_array(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Values as a vector, ordered by ``names`` (or insertion order)."""
        ordered = names if names is not None else self.names()
        return np.array([self.get(name) for name in ordered], dtype=float)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: object) -> bool:
        return name in self._values

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __repr__(self) -> str:
        return f"FeatureVector(n_features={len(self)})"


class FeatureBlock:
    """Named feature columns over a population: ``(n_matchers, n_features)``.

    The block is the unit of the batch-first engine: extractors produce one
    block per feature set, the pipeline ``hstack``s blocks into the fused
    encoding, and :class:`repro.core.features.cache.FeatureBlockCache` stores
    blocks keyed by (set name, population fingerprint, extractor config).

    Non-finite entries are replaced with 0 on construction (mirroring
    :meth:`FeatureVector.set`) and the matrix is frozen so cached blocks can
    be shared safely across configurations.
    """

    def __init__(self, names: Sequence[str], matrix: np.ndarray) -> None:
        array = np.asarray(matrix, dtype=float)
        if array.ndim != 2:
            raise ValueError(f"feature block matrix must be 2-D, got shape {array.shape}")
        if array.shape[1] != len(names):
            raise ValueError(
                f"feature block has {array.shape[1]} columns but {len(names)} names"
            )
        if len(set(names)) != len(names):
            raise ValueError("feature block names must be unique")
        array = np.where(np.isfinite(array), array, 0.0)
        array.flags.writeable = False
        self.names: tuple[str, ...] = tuple(names)
        self.matrix: np.ndarray = array

    @property
    def n_matchers(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_features(self) -> int:
        return self.matrix.shape[1]

    def row(self, index: int) -> np.ndarray:
        """The feature vector of one matcher, as an array."""
        return self.matrix[index]

    def row_vector(self, index: int) -> FeatureVector:
        """The feature vector of one matcher, as a named :class:`FeatureVector`."""
        return FeatureVector(dict(zip(self.names, self.matrix[index])))

    def column(self, name: str) -> np.ndarray:
        """The population values of one named feature."""
        return self.matrix[:, self.names.index(name)]

    def select_rows(self, indices: Sequence[int]) -> "FeatureBlock":
        """A block restricted to a subset of matchers."""
        return FeatureBlock(self.names, self.matrix[list(indices)])

    @staticmethod
    def hstack(blocks: Sequence["FeatureBlock"]) -> "FeatureBlock":
        """Fuse blocks column-wise (the paper's late-fusion concatenation)."""
        if not blocks:
            raise ValueError("cannot hstack an empty sequence of feature blocks")
        n_rows = {block.n_matchers for block in blocks}
        if len(n_rows) != 1:
            raise ValueError(f"blocks disagree on population size: {sorted(n_rows)}")
        names: list[str] = []
        for block in blocks:
            names.extend(block.names)
        return FeatureBlock(names, np.hstack([block.matrix for block in blocks]))

    def __repr__(self) -> str:
        return f"FeatureBlock(n_matchers={self.n_matchers}, n_features={self.n_features})"


class FeatureExtractor(ABC):
    """A (possibly trainable) mapping from human matchers to named features.

    Sub-classes implement the batch path (:meth:`extract_batch`); the scalar
    :meth:`extract` delegates to it with a single-element population.
    """

    #: Name of the feature set (e.g. ``"lrsm"``), used as a feature-name prefix.
    set_name: str = "base"
    #: Whether :meth:`fit` must be called before :meth:`extract`.
    requires_fitting: bool = False

    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray | None = None) -> "FeatureExtractor":
        """Learn anything the extractor needs from the training population."""
        return self

    @abstractmethod
    def extract_batch(self, matchers: Sequence[HumanMatcher]) -> FeatureBlock:
        """Extract the feature set for a whole population at once."""

    def extract(self, matcher: HumanMatcher) -> FeatureVector:
        """Extract the feature set for one matcher (shim over the batch path)."""
        return self.extract_batch([matcher]).row_vector(0)

    def extract_many(self, matchers: Sequence[HumanMatcher]) -> list[FeatureVector]:
        block = self.extract_batch(matchers)
        return [block.row_vector(index) for index in range(block.n_matchers)]

    def config_fingerprint(self) -> str:
        """A stable digest of everything the extracted values depend on.

        Used by :class:`repro.core.features.cache.FeatureBlockCache` to key
        blocks: two extractors with equal fingerprints must produce identical
        blocks for the same population.  The base implementation keys on the
        class and set name only; extractors with configuration or fitted
        state must extend it.
        """
        return f"{type(self).__name__}:{self.set_name}"

    def _prefixed(self, name: str) -> str:
        return f"{self.set_name}_{name}"
