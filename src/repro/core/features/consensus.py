"""Consensuality model: how much the training population agrees on each pair.

The paper's correlation features use two consistency dimensions, temporal
and consensual; the consensual part, ``pi_i``, counts how many training
matchers included the decision's element pair in their final matching
matrix.  The model is fitted on training matchers only (test matchers never
contribute), exactly as in Section III-B.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.matching.history import DecisionHistory
from repro.matching.matcher import HumanMatcher


class ConsensusModel:
    """Per-pair selection counts over a training population."""

    def __init__(self) -> None:
        self._counts: dict[tuple[int, int], int] = {}
        self._n_matchers: int = 0

    @property
    def is_fitted(self) -> bool:
        return self._n_matchers > 0

    @property
    def n_matchers(self) -> int:
        return self._n_matchers

    def fit(self, matchers: Sequence[HumanMatcher]) -> "ConsensusModel":
        """Count, per pair, how many matchers selected it in their final matrix."""
        self._counts = {}
        self._n_matchers = len(matchers)
        for matcher in matchers:
            for pair in matcher.matrix().nonzero_entries():
                self._counts[pair] = self._counts.get(pair, 0) + 1
        return self

    def count(self, pair: tuple[int, int]) -> int:
        """Raw number of training matchers that selected ``pair``."""
        return self._counts.get(pair, 0)

    def agreement(self, pair: tuple[int, int]) -> float:
        """Selection count normalised by the population size (0 when unfitted)."""
        if self._n_matchers == 0:
            return 0.0
        return self._counts.get(pair, 0) / self._n_matchers

    def history_agreement(self, history: DecisionHistory) -> list[float]:
        """Per-decision agreement values, in sequence order."""
        return [self.agreement(decision.pair) for decision in history]

    def fingerprint(self) -> str:
        """A stable digest of the fitted state (for feature-block cache keys)."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(str(self._n_matchers).encode())
        for pair, count in sorted(self._counts.items()):
            digest.update(f"{pair[0]},{pair[1]}:{count};".encode())
        return digest.hexdigest()

    def __repr__(self) -> str:
        return f"ConsensusModel(n_matchers={self._n_matchers}, pairs={len(self._counts)})"
