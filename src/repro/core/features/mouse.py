"""Phi_Mou(G): aggregated mouse-movement features.

Follows the behavioural-trace literature the paper cites (Rzeszotarski &
Kittur's "instrumenting the crowd", Goyal et al., Wu & Bailey): totals and
averages of movement, per-event-type counts, screen coverage and the mean
"on focus" position, plus the mass the matcher spends in each UI region of
the Ontobuilder layout.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.features.base import FeatureBlock, FeatureExtractor
from repro.matching.matcher import HumanMatcher
from repro.matching.mouse import MouseEventType

_FEATURE_NAMES = (
    "totalLength",
    "totalTime",
    "meanSpeed",
    "countEvents",
    "avgX",
    "avgY",
    "countMove",
    "countLeftClick",
    "countRightClick",
    "countScroll",
    "scrollRatio",
    "clickRatio",
    "coverage",
    "massTopLeft",
    "massTopRight",
    "massBottom",
    "eventsPerDecision",
)


class MouseFeatures(FeatureExtractor):
    """Aggregated features over the movement map."""

    set_name = "mou"
    requires_fitting = False

    def feature_names(self) -> list[str]:
        return [self._prefixed(name) for name in _FEATURE_NAMES]

    def extract_batch(self, matchers: Sequence[HumanMatcher]) -> FeatureBlock:
        names = self.feature_names()
        matrix = np.zeros((len(matchers), len(names)))
        for row, matcher in enumerate(matchers):
            movement = matcher.movement
            n_events = len(movement)

            matrix[row, 0] = movement.path_length()
            matrix[row, 1] = movement.duration()
            matrix[row, 2] = movement.mean_speed()
            matrix[row, 3] = n_events

            mean_x, mean_y = movement.mean_position()
            rows, cols = movement.screen
            matrix[row, 4] = mean_x / cols if cols else 0.0
            matrix[row, 5] = mean_y / rows if rows else 0.0

            counts = movement.count_by_type()
            total = max(n_events, 1)
            matrix[row, 6] = counts[MouseEventType.MOVE]
            matrix[row, 7] = counts[MouseEventType.LEFT_CLICK]
            matrix[row, 8] = counts[MouseEventType.RIGHT_CLICK]
            matrix[row, 9] = counts[MouseEventType.SCROLL]
            matrix[row, 10] = counts[MouseEventType.SCROLL] / total
            matrix[row, 11] = counts[MouseEventType.LEFT_CLICK] / total

            heat_map = movement.heat_map(shape=(24, 32))
            matrix[row, 12] = heat_map.coverage()

            # Mass per UI region (quadrants of the Ontobuilder layout).
            half_rows = 12
            half_cols = 16
            matrix[row, 13] = heat_map.region_mass(slice(0, half_rows), slice(0, half_cols))
            matrix[row, 14] = heat_map.region_mass(slice(0, half_rows), slice(half_cols, 32))
            matrix[row, 15] = heat_map.region_mass(slice(half_rows, 24), slice(0, 32))

            matrix[row, 16] = (
                n_events / len(matcher.history) if len(matcher.history) else 0.0
            )
        return FeatureBlock(names, matrix)

    def config_fingerprint(self) -> str:
        return "MouseFeatures:v1"
