"""Phi_Mou(G): aggregated mouse-movement features.

Follows the behavioural-trace literature the paper cites (Rzeszotarski &
Kittur's "instrumenting the crowd", Goyal et al., Wu & Bailey): totals and
averages of movement, per-event-type counts, screen coverage and the mean
"on focus" position, plus the mass the matcher spends in each UI region of
the Ontobuilder layout.
"""

from __future__ import annotations

from repro.core.features.base import FeatureExtractor, FeatureVector
from repro.matching.matcher import HumanMatcher
from repro.matching.mouse import MouseEventType


class MouseFeatures(FeatureExtractor):
    """Aggregated features over the movement map."""

    set_name = "mou"
    requires_fitting = False

    def extract(self, matcher: HumanMatcher) -> FeatureVector:
        movement = matcher.movement
        features = FeatureVector()

        features.set(self._prefixed("totalLength"), movement.path_length())
        features.set(self._prefixed("totalTime"), movement.duration())
        features.set(self._prefixed("meanSpeed"), movement.mean_speed())
        features.set(self._prefixed("countEvents"), len(movement))

        mean_x, mean_y = movement.mean_position()
        rows, cols = movement.screen
        features.set(self._prefixed("avgX"), mean_x / cols if cols else 0.0)
        features.set(self._prefixed("avgY"), mean_y / rows if rows else 0.0)

        counts = movement.count_by_type()
        total = max(len(movement), 1)
        features.set(self._prefixed("countMove"), counts[MouseEventType.MOVE])
        features.set(self._prefixed("countLeftClick"), counts[MouseEventType.LEFT_CLICK])
        features.set(self._prefixed("countRightClick"), counts[MouseEventType.RIGHT_CLICK])
        features.set(self._prefixed("countScroll"), counts[MouseEventType.SCROLL])
        features.set(self._prefixed("scrollRatio"), counts[MouseEventType.SCROLL] / total)
        features.set(self._prefixed("clickRatio"), counts[MouseEventType.LEFT_CLICK] / total)

        heat_map = movement.heat_map(shape=(24, 32))
        features.set(self._prefixed("coverage"), heat_map.coverage())

        # Mass per UI region (quadrants of the Ontobuilder layout).
        half_rows = 12
        half_cols = 16
        features.set(
            self._prefixed("massTopLeft"),
            heat_map.region_mass(slice(0, half_rows), slice(0, half_cols)),
        )
        features.set(
            self._prefixed("massTopRight"),
            heat_map.region_mass(slice(0, half_rows), slice(half_cols, 32)),
        )
        features.set(
            self._prefixed("massBottom"),
            heat_map.region_mass(slice(half_rows, 24), slice(0, 32)),
        )

        events_per_decision = (
            len(movement) / len(matcher.history) if len(matcher.history) else 0.0
        )
        features.set(self._prefixed("eventsPerDecision"), events_per_decision)

        return features
