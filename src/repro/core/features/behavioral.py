"""Phi_Beh(H): aggregated decision-history features.

Aggregations over confidence, decision times, revisits (mind changes) and
consensuality, following the crowd-quality-assessment literature the paper
adapts (Rzeszotarski & Kittur; Goyal et al.).  The consensus aggregates are
only available once the extractor has been fitted on the training
population (they are the "consensuality" dimension of the correlation
features).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.features.base import FeatureBlock, FeatureExtractor
from repro.core.features.consensus import ConsensusModel
from repro.matching.matcher import HumanMatcher


def _safe_stats(values: np.ndarray) -> tuple[float, float, float, float]:
    """(mean, std, min, max) of a possibly empty vector."""
    if values.size == 0:
        return (0.0, 0.0, 0.0, 0.0)
    return (
        float(values.mean()),
        float(values.std()),
        float(values.min()),
        float(values.max()),
    )


#: Aggregate suffixes, in the order `_safe_stats` returns them.
_STAT_KEYS = ("avg", "std", "min", "max")


class BehavioralFeatures(FeatureExtractor):
    """Aggregated features over the decision history (confidence, pace, revisions)."""

    set_name = "beh"
    requires_fitting = False

    def __init__(self, consensus: Optional[ConsensusModel] = None) -> None:
        self.consensus = consensus

    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray | None = None) -> "BehavioralFeatures":
        """Fit the consensuality model on the training population."""
        self.consensus = ConsensusModel().fit(matchers)
        return self

    def feature_names(self) -> list[str]:
        names = [self._prefixed(f"{key}Conf") for key in _STAT_KEYS]
        names += [self._prefixed(f"{key}Time") for key in _STAT_KEYS]
        names += [
            self._prefixed(name)
            for name in (
                "totalTime",
                "countDecisions",
                "countDistinctCorr",
                "countMindChange",
                "revisitRatio",
                "decisionRate",
                "matrixDensity",
                "matrixMeanConf",
                "confDrift",
                "paceDrift",
            )
        ]
        names += [self._prefixed(f"{key}Consensus") for key in _STAT_KEYS]
        return names

    def extract_batch(self, matchers: Sequence[HumanMatcher]) -> FeatureBlock:
        names = self.feature_names()
        matrix = np.zeros((len(matchers), len(names)))
        consensus_fitted = self.consensus is not None and self.consensus.is_fitted
        for row, matcher in enumerate(matchers):
            history = matcher.history
            confidences = history.confidences()
            times = history.inter_decision_times()
            n_decisions = len(history)
            duration = history.duration()

            matrix[row, 0:4] = _safe_stats(confidences)
            matrix[row, 4:8] = _safe_stats(times)
            matrix[row, 8] = duration
            matrix[row, 9] = n_decisions
            matrix[row, 10] = len(history.decided_pairs())
            mind_changes = history.n_mind_changes()
            matrix[row, 11] = mind_changes
            matrix[row, 12] = mind_changes / n_decisions if n_decisions else 0.0
            matrix[row, 13] = n_decisions / duration if duration > 0 else 0.0

            matching_matrix = matcher.matrix()
            matrix[row, 14] = matching_matrix.density
            matrix[row, 15] = matching_matrix.mean_confidence()

            # Temporal consistency: drift of pace and confidence between the
            # first and the second half of the session (the "temporal"
            # dimension of the correlation features).
            if n_decisions >= 4:
                half = n_decisions // 2
                matrix[row, 16] = float(confidences[half:].mean() - confidences[:half].mean())
                matrix[row, 17] = float(times[half:].mean() - times[:half].mean())

            # Consensuality aggregates (available after fitting on the train set).
            if consensus_fitted:
                agreements = np.array(self.consensus.history_agreement(history))
            else:
                agreements = np.zeros(0)
            matrix[row, 18:22] = _safe_stats(agreements)
        return FeatureBlock(names, matrix)

    def config_fingerprint(self) -> str:
        consensus = (
            self.consensus.fingerprint()
            if self.consensus is not None and self.consensus.is_fitted
            else "unfitted"
        )
        return f"BehavioralFeatures:consensus={consensus}"
