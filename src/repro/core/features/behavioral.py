"""Phi_Beh(H): aggregated decision-history features.

Aggregations over confidence, decision times, revisits (mind changes) and
consensuality, following the crowd-quality-assessment literature the paper
adapts (Rzeszotarski & Kittur; Goyal et al.).  The consensus aggregates are
only available once the extractor has been fitted on the training
population (they are the "consensuality" dimension of the correlation
features).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.features.base import FeatureExtractor, FeatureVector
from repro.core.features.consensus import ConsensusModel
from repro.matching.matcher import HumanMatcher


def _safe_stats(values: np.ndarray) -> dict[str, float]:
    """Mean / std / min / max of a possibly empty vector."""
    if values.size == 0:
        return {"avg": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
    return {
        "avg": float(values.mean()),
        "std": float(values.std()),
        "min": float(values.min()),
        "max": float(values.max()),
    }


class BehavioralFeatures(FeatureExtractor):
    """Aggregated features over the decision history (confidence, pace, revisions)."""

    set_name = "beh"
    requires_fitting = False

    def __init__(self, consensus: Optional[ConsensusModel] = None) -> None:
        self.consensus = consensus

    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray | None = None) -> "BehavioralFeatures":
        """Fit the consensuality model on the training population."""
        self.consensus = ConsensusModel().fit(matchers)
        return self

    def extract(self, matcher: HumanMatcher) -> FeatureVector:
        history = matcher.history
        features = FeatureVector()

        confidences = history.confidences()
        for key, value in _safe_stats(confidences).items():
            features.set(self._prefixed(f"{key}Conf"), value)

        times = history.inter_decision_times()
        for key, value in _safe_stats(times).items():
            features.set(self._prefixed(f"{key}Time"), value)
        features.set(self._prefixed("totalTime"), history.duration())

        n_decisions = len(history)
        distinct_pairs = history.decided_pairs()
        features.set(self._prefixed("countDecisions"), n_decisions)
        features.set(self._prefixed("countDistinctCorr"), len(distinct_pairs))
        features.set(self._prefixed("countMindChange"), history.n_mind_changes())
        features.set(
            self._prefixed("revisitRatio"),
            history.n_mind_changes() / n_decisions if n_decisions else 0.0,
        )
        features.set(
            self._prefixed("decisionRate"),
            n_decisions / history.duration() if history.duration() > 0 else 0.0,
        )

        matrix = matcher.matrix()
        features.set(self._prefixed("matrixDensity"), matrix.density)
        features.set(self._prefixed("matrixMeanConf"), matrix.mean_confidence())

        # Temporal consistency: drift of pace and confidence between the first
        # and the second half of the session (the "temporal" dimension of the
        # correlation features).
        if n_decisions >= 4:
            half = n_decisions // 2
            first_conf, second_conf = confidences[:half], confidences[half:]
            first_time, second_time = times[:half], times[half:]
            features.set(
                self._prefixed("confDrift"), float(second_conf.mean() - first_conf.mean())
            )
            features.set(
                self._prefixed("paceDrift"), float(second_time.mean() - first_time.mean())
            )
        else:
            features.set(self._prefixed("confDrift"), 0.0)
            features.set(self._prefixed("paceDrift"), 0.0)

        # Consensuality aggregates (available after fitting on the train set).
        if self.consensus is not None and self.consensus.is_fitted:
            agreements = np.array(self.consensus.history_agreement(history))
        else:
            agreements = np.zeros(0)
        for key, value in _safe_stats(agreements).items():
            features.set(self._prefixed(f"{key}Consensus"), value)

        return features
