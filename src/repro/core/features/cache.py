"""Cross-configuration feature-block cache.

The paper's studies repeatedly re-extract the same feature sets over the
same populations: the Table III ablation trains eleven configurations on one
train/test split, Table IV refits per characteristic, and Tables IIa/IIb
evaluate three MExI variants against the same test cohorts.  The offline
feature sets (``lrsm`` / ``beh`` / ``mou``) — and the neural sets, whenever
their training inputs are bitwise identical — depend only on the population
and the extractor configuration, so their blocks can be computed once and
shared.

:class:`FeatureBlockCache` stores :class:`~repro.core.features.base.FeatureBlock`
objects keyed by ``(set name, population fingerprint, extractor config
fingerprint)``.  Population fingerprints digest the full behavioural content
of each matcher (decision history and movement map), so truncated or
sub-sampled matchers never collide with their parents.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from repro.core.features.base import FeatureBlock
from repro.matching.matcher import HumanMatcher


def matcher_fingerprint(matcher: HumanMatcher) -> str:
    """A content digest of one matcher's observable behaviour.

    Covers the identifier, the full decision history (pairs, confidences,
    timestamps, matrix shape) and the movement map (positions, types,
    timestamps, screen size): everything the five feature sets read.

    The digest is memoised on the matcher object: matchers are treated as
    immutable throughout the code base (truncation and sub-matcher
    generation return new objects), so the first computation is definitive.
    """
    cached = getattr(matcher, "_repro_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(digest_size=16)
    digest.update(matcher.matcher_id.encode())
    history = matcher.history
    digest.update(np.asarray(history.shape, dtype=np.int64).tobytes())
    if len(history):
        decisions = np.array(
            [(d.row, d.col, d.confidence, d.timestamp) for d in history], dtype=np.float64
        )
        digest.update(decisions.tobytes())
    movement = matcher.movement
    digest.update(np.asarray(movement.screen, dtype=np.int64).tobytes())
    if len(movement):
        # Columnar fast path: identical bytes to the historical row-wise
        # [(x, y, code, t), ...] float64 layout, without materialising
        # MouseEvent objects.
        data = movement.data
        events = np.column_stack([data.x, data.y, data.codes.astype(np.float64), data.t])
        digest.update(np.ascontiguousarray(events).tobytes())
    fingerprint = digest.hexdigest()
    matcher._repro_fingerprint = fingerprint
    return fingerprint


# Event-type codes now live with the columnar store; re-exported here for
# backwards compatibility of the fingerprint contract.
from repro.matching.events import EVENT_CODES as _EVENT_CODES  # noqa: E402


def population_fingerprint(matchers: Sequence[HumanMatcher]) -> str:
    """An order-sensitive digest of a whole population."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(len(matchers)).encode())
    for matcher in matchers:
        digest.update(matcher_fingerprint(matcher).encode())
    return digest.hexdigest()


def array_fingerprint(array: np.ndarray | None) -> str:
    """A digest of an array (e.g. a label matrix a neural extractor trained on)."""
    if array is None:
        return "none"
    contiguous = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(contiguous.shape).encode())
    digest.update(contiguous.tobytes())
    return digest.hexdigest()


class FeatureBlockCache:
    """An LRU cache of feature blocks shared across experiment configurations.

    One cache instance is created per study (or per
    :func:`repro.experiments.runner.run` invocation) and threaded through
    pipelines and characterizers; every configuration that extracts the same
    feature set over the same population reuses the stored block.

    The cache also memoises fitted *neural extractor state* keyed by the
    exact training inputs (population, labels, hyper-parameters, seed):
    training is deterministic, so two configurations that would train the
    same network share one fit.

    The cache is safe to share across :class:`repro.runtime.TaskRunner`
    thread workers: lookups and insertions are guarded by a lock, and a
    lost insertion race keeps the first-stored object (both competitors
    computed bitwise-identical content, so either is correct).  Computation
    itself runs outside the lock.  For the ``process`` backend the cache is
    pickled into each worker (the lock is dropped and recreated), so it
    should be **pre-warmed** before fan-out — worker-side insertions do not
    propagate back to the parent.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._blocks: OrderedDict[tuple[str, str, str], FeatureBlock] = OrderedDict()
        self._fits: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.fit_hits = 0
        self.fit_misses = 0

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Feature blocks
    # ------------------------------------------------------------------ #

    def get_or_compute(
        self,
        set_name: str,
        matchers: Sequence[HumanMatcher],
        config_fingerprint: str,
        compute: Callable[[], FeatureBlock],
    ) -> FeatureBlock:
        """The cached block for (set, population, config), computing on miss."""
        key = (set_name, population_fingerprint(matchers), config_fingerprint)
        with self._lock:
            cached = self._blocks.get(key)
            if cached is not None:
                self._blocks.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        block = compute()
        if block.n_matchers != len(matchers):
            raise ValueError(
                f"extractor for {set_name!r} returned {block.n_matchers} rows "
                f"for a population of {len(matchers)}"
            )
        with self._lock:
            raced = self._blocks.get(key)
            if raced is not None:
                return raced
            self._blocks[key] = block
            self._evict(self._blocks)
        return block

    # ------------------------------------------------------------------ #
    # Fitted neural-extractor state
    # ------------------------------------------------------------------ #

    def get_or_fit(self, fit_fingerprint: str, fit: Callable[[], object]) -> object:
        """Memoise a deterministic fit (e.g. a trained neural extractor)."""
        with self._lock:
            cached = self._fits.get(fit_fingerprint)
            if cached is not None:
                self._fits.move_to_end(fit_fingerprint)
                self.fit_hits += 1
                return cached
            self.fit_misses += 1
        state = fit()
        with self._lock:
            raced = self._fits.get(fit_fingerprint)
            if raced is not None:
                return raced
            self._fits[fit_fingerprint] = state
            self._evict(self._fits)
        return state

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #

    def _evict(self, store: OrderedDict) -> None:
        while len(store) > self.max_entries:
            store.popitem(last=False)

    def __len__(self) -> int:
        return len(self._blocks)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._fits.clear()
            self.hits = self.misses = 0
            self.fit_hits = self.fit_misses = 0

    def stats(self) -> dict[str, int]:
        """Hit/miss counters (useful in benchmarks and logs)."""
        with self._lock:
            return {
                "entries": len(self._blocks),
                "hits": self.hits,
                "misses": self.misses,
                "fit_entries": len(self._fits),
                "fit_hits": self.fit_hits,
                "fit_misses": self.fit_misses,
            }

    def __repr__(self) -> str:
        return (
            f"FeatureBlockCache(entries={len(self._blocks)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
