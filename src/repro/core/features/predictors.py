"""Phi_LRSM(H): matching-predictor features over the projected matching matrix.

The Precision and Thoroughness feature groups of Section III-A: every
predictor in :mod:`repro.predictors` is evaluated on the matrix induced by
the matcher's decision history.
"""

from __future__ import annotations

from typing import Optional

from repro.core.features.base import FeatureExtractor, FeatureVector
from repro.matching.matcher import HumanMatcher
from repro.predictors import PredictorRegistry, default_registry


class LRSMFeatures(FeatureExtractor):
    """Matching predictors as features (the LRSM feature family)."""

    set_name = "lrsm"
    requires_fitting = False

    def __init__(self, registry: Optional[PredictorRegistry] = None) -> None:
        self.registry = registry or default_registry()

    def extract(self, matcher: HumanMatcher) -> FeatureVector:
        matrix = matcher.matrix()
        features = FeatureVector()
        for name, value in self.registry.evaluate(matrix).items():
            features.set(self._prefixed(name), value)
        return features

    def feature_names(self) -> list[str]:
        """The names this extractor produces, in registry order."""
        return [self._prefixed(name) for name in self.registry.names()]
