"""Phi_LRSM(H): matching-predictor features over the projected matching matrix.

The Precision and Thoroughness feature groups of Section III-A: every
predictor in :mod:`repro.predictors` is evaluated on the matrix induced by
the matcher's decision history.  The batch path projects every history to
its matrix once and fills a preallocated ``(n_matchers, n_predictors)``
block directly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.features.base import FeatureBlock, FeatureExtractor
from repro.matching.matcher import HumanMatcher
from repro.predictors import PredictorRegistry, default_registry


class LRSMFeatures(FeatureExtractor):
    """Matching predictors as features (the LRSM feature family)."""

    set_name = "lrsm"
    requires_fitting = False

    def __init__(self, registry: Optional[PredictorRegistry] = None) -> None:
        self.registry = registry or default_registry()

    def extract_batch(self, matchers: Sequence[HumanMatcher]) -> FeatureBlock:
        names = self.feature_names()
        predictors = list(self.registry)
        matrix = np.zeros((len(matchers), len(predictors)))
        for row, matcher in enumerate(matchers):
            matching_matrix = matcher.matrix()
            for col, predictor in enumerate(predictors):
                matrix[row, col] = float(predictor(matching_matrix))
        return FeatureBlock(names, matrix)

    def feature_names(self) -> list[str]:
        """The names this extractor produces, in registry order."""
        return [self._prefixed(name) for name in self.registry.names()]

    def config_fingerprint(self) -> str:
        return f"LRSMFeatures:{','.join(self.registry.names())}"
