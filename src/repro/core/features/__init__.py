"""The MExI feature encoding Phi(D) (Section III-A).

Five feature sets are extracted from a human matcher ``D = (H, G)``:

* ``Phi_LRSM(H)`` -- matching predictors over the projected matrix
  (:mod:`repro.core.features.predictors`),
* ``Phi_Beh(H)``  -- aggregated decision-history features
  (:mod:`repro.core.features.behavioral`),
* ``Phi_Mou(G)``  -- aggregated mouse features
  (:mod:`repro.core.features.mouse`),
* ``Phi_Seq(H)``  -- label coefficients of an LSTM over the decision sequence
  (:mod:`repro.core.features.sequential`),
* ``Phi_Spa(G)``  -- label coefficients of CNNs over the four heat maps
  (:mod:`repro.core.features.spatial`).

:class:`repro.core.features.pipeline.FeaturePipeline` assembles them with
the paper's late-fusion strategy.
"""

from repro.core.features.base import FeatureBlock, FeatureExtractor, FeatureVector
from repro.core.features.cache import (
    FeatureBlockCache,
    matcher_fingerprint,
    population_fingerprint,
)
from repro.core.features.consensus import ConsensusModel
from repro.core.features.predictors import LRSMFeatures
from repro.core.features.behavioral import BehavioralFeatures
from repro.core.features.mouse import MouseFeatures
from repro.core.features.sequential import SequentialFeatures
from repro.core.features.spatial import SpatialFeatures
from repro.core.features.pipeline import (
    FEATURE_SET_NAMES,
    NEURAL_SET_NAMES,
    OFFLINE_SET_NAMES,
    FeaturePipeline,
    FeatureSetName,
)

__all__ = [
    "FeatureBlock",
    "FeatureBlockCache",
    "FeatureExtractor",
    "FeatureVector",
    "ConsensusModel",
    "LRSMFeatures",
    "BehavioralFeatures",
    "MouseFeatures",
    "SequentialFeatures",
    "SpatialFeatures",
    "FeaturePipeline",
    "FeatureSetName",
    "FEATURE_SET_NAMES",
    "OFFLINE_SET_NAMES",
    "NEURAL_SET_NAMES",
    "matcher_fingerprint",
    "population_fingerprint",
]
