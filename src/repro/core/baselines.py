"""The seven baselines of Section IV-B2.

* ``Rand`` -- random labels.
* ``Rand_Freq`` -- labels drawn according to their training-set frequency.
* ``Conf`` -- trusts the reported confidence (Oyama et al.).
* ``Qual. Test`` -- uses the warm-up / qualification phase accuracy
  (Zhang et al.).
* ``Self-Assess`` -- the pre-selection rule of Gadiraju et al.
  (``|Cal| < 0.2`` and ``P > 0.6`` on the qualification phase).
* ``LRSM`` -- a learned characterizer over matching-predictor features only.
* ``BEH`` -- a learned characterizer over behavioural (history + mouse)
  features only (Goyal et al.).

All baselines share the characterizer interface: ``fit(matchers, labels)``
then ``predict(matchers) -> (n, 4)`` 0/1 matrix.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.core.characterizer import MExICharacterizer, MExIVariant
from repro.core.expert_model import EXPERT_CHARACTERISTICS
from repro.matching.matcher import HumanMatcher
from repro.matching.metrics import calibration, precision


class BaselineCharacterizer(ABC):
    """Common interface of all expert-identification baselines."""

    name: str = "baseline"

    @abstractmethod
    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray) -> "BaselineCharacterizer":
        """Learn whatever the baseline needs from the training population."""

    @abstractmethod
    def predict(self, matchers: Sequence[HumanMatcher]) -> np.ndarray:
        """Predicted 0/1 label matrix, one row per matcher."""

    def _empty_prediction(self, n_matchers: int) -> np.ndarray:
        return np.zeros((n_matchers, len(EXPERT_CHARACTERISTICS)), dtype=int)


class RandomBaseline(BaselineCharacterizer):
    """Uniformly random labels (``Rand``)."""

    name = "Rand"

    def __init__(self, random_state: int = 0) -> None:
        self.random_state = random_state

    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray) -> "RandomBaseline":
        return self

    def predict(self, matchers: Sequence[HumanMatcher]) -> np.ndarray:
        rng = np.random.default_rng(self.random_state)
        return rng.integers(0, 2, size=(len(matchers), len(EXPERT_CHARACTERISTICS)))


class FrequencyBaseline(BaselineCharacterizer):
    """Labels sampled according to their frequency in the training set (``Rand_Freq``)."""

    name = "Rand_Freq"

    def __init__(self, random_state: int = 0) -> None:
        self.random_state = random_state
        self._frequencies: Optional[np.ndarray] = None

    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray) -> "FrequencyBaseline":
        label_matrix = np.asarray(labels, dtype=float)
        if label_matrix.size == 0:
            raise ValueError("cannot fit the frequency baseline on an empty training set")
        self._frequencies = label_matrix.mean(axis=0)
        return self

    def predict(self, matchers: Sequence[HumanMatcher]) -> np.ndarray:
        if self._frequencies is None:
            raise RuntimeError("FrequencyBaseline must be fitted before predicting")
        rng = np.random.default_rng(self.random_state)
        draws = rng.random((len(matchers), len(EXPERT_CHARACTERISTICS)))
        return (draws < self._frequencies).astype(int)


class ConfidenceBaseline(BaselineCharacterizer):
    """Trusts self-reported confidence (``Conf``): high mean confidence => expert."""

    name = "Conf"

    def __init__(self) -> None:
        self._threshold: float = 0.5

    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray) -> "ConfidenceBaseline":
        confidences = [m.history.mean_confidence() for m in matchers]
        self._threshold = float(np.median(confidences)) if confidences else 0.5
        return self

    def predict(self, matchers: Sequence[HumanMatcher]) -> np.ndarray:
        predictions = self._empty_prediction(len(matchers))
        for row, matcher in enumerate(matchers):
            is_confident = matcher.history.mean_confidence() > self._threshold
            predictions[row, :] = int(is_confident)
        return predictions


def _qualification_metrics(
    matcher: HumanMatcher, n_decisions: int
) -> tuple[float, float]:
    """Precision and calibration measured on the first ``n_decisions`` decisions."""
    if matcher.reference is None:
        raise ValueError(f"matcher {matcher.matcher_id!r} has no reference match attached")
    prefix = matcher.history.prefix(n_decisions)
    if prefix.is_empty:
        return 0.0, 1.0
    prefix_precision = precision(prefix.to_matrix(), matcher.reference)
    prefix_calibration = calibration(prefix, matcher.reference)
    return prefix_precision, prefix_calibration


class QualificationTestBaseline(BaselineCharacterizer):
    """Qualification-test accuracy (``Qual. Test``): early precision => expert."""

    name = "Qual. Test"

    def __init__(self, n_qualification_decisions: int = 5, threshold: float = 0.5) -> None:
        self.n_qualification_decisions = n_qualification_decisions
        self.threshold = threshold

    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray) -> "QualificationTestBaseline":
        return self

    def predict(self, matchers: Sequence[HumanMatcher]) -> np.ndarray:
        predictions = self._empty_prediction(len(matchers))
        for row, matcher in enumerate(matchers):
            early_precision, _ = _qualification_metrics(matcher, self.n_qualification_decisions)
            predictions[row, :] = int(early_precision > self.threshold)
        return predictions


class SelfAssessmentBaseline(BaselineCharacterizer):
    """Self-assessment pre-selection (``Self-Assess``, Gadiraju et al.).

    A matcher is an expert when, on the qualification phase, its absolute
    calibration is below 0.2 and its precision above 0.6.
    """

    name = "Self-Assess"

    def __init__(
        self,
        n_qualification_decisions: int = 5,
        calibration_threshold: float = 0.2,
        precision_threshold: float = 0.6,
    ) -> None:
        self.n_qualification_decisions = n_qualification_decisions
        self.calibration_threshold = calibration_threshold
        self.precision_threshold = precision_threshold

    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray) -> "SelfAssessmentBaseline":
        return self

    def predict(self, matchers: Sequence[HumanMatcher]) -> np.ndarray:
        predictions = self._empty_prediction(len(matchers))
        for row, matcher in enumerate(matchers):
            early_precision, early_calibration = _qualification_metrics(
                matcher, self.n_qualification_decisions
            )
            is_expert = (
                abs(early_calibration) < self.calibration_threshold
                and early_precision > self.precision_threshold
            )
            predictions[row, :] = int(is_expert)
        return predictions


class LRSMBaseline(BaselineCharacterizer):
    """Learned characterizer over matching-predictor features only (``LRSM``)."""

    name = "LRSM"

    def __init__(self, random_state: int = 0) -> None:
        self.random_state = random_state
        self._model = MExICharacterizer(
            variant=MExIVariant.EMPTY, feature_sets=("lrsm",), random_state=random_state
        )

    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray) -> "LRSMBaseline":
        self._model.fit(matchers, labels)
        return self

    def predict(self, matchers: Sequence[HumanMatcher]) -> np.ndarray:
        return self._model.predict(matchers)


class BehavioralBaseline(BaselineCharacterizer):
    """Learned characterizer over behavioural features only (``BEH``, Goyal et al.)."""

    name = "BEH"

    def __init__(self, random_state: int = 0) -> None:
        self.random_state = random_state
        self._model = MExICharacterizer(
            variant=MExIVariant.EMPTY, feature_sets=("beh", "mou"), random_state=random_state
        )

    def fit(self, matchers: Sequence[HumanMatcher], labels: np.ndarray) -> "BehavioralBaseline":
        self._model.fit(matchers, labels)
        return self

    def predict(self, matchers: Sequence[HumanMatcher]) -> np.ndarray:
        return self._model.predict(matchers)


def default_baselines(random_state: int = 0) -> list[BaselineCharacterizer]:
    """The seven baselines, in the order of Table II."""
    return [
        RandomBaseline(random_state=random_state),
        FrequencyBaseline(random_state=random_state),
        ConfidenceBaseline(),
        QualificationTestBaseline(),
        SelfAssessmentBaseline(),
        LRSMBaseline(random_state=random_state),
        BehavioralBaseline(random_state=random_state),
    ]
