"""Utilizing matching experts (Section IV-F): filtering and outcome improvement.

Given a characterizer (MExI or a baseline), :class:`ExpertFilter` selects the
matchers identified as experts and compares the matching quality of the
selected sub-population against the full population.  The early-identification
variant (Figure 11) truncates every matcher to the first half of the cohort's
median number of decisions before predicting, then evaluates the *full*
histories of the selected matchers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.expert_model import EXPERT_CHARACTERISTICS
from repro.matching.matcher import HumanMatcher
from repro.matching.metrics import evaluate_matcher, population_performance


@dataclass
class FilteringResult:
    """Quality of a selected sub-population vs. the full population."""

    method: str
    selected_ids: list[str]
    selected_performance: dict[str, float]
    population_performance: dict[str, float]
    n_population: int

    @property
    def n_selected(self) -> int:
        return len(self.selected_ids)

    def improvement(self, measure: str) -> float:
        """Relative improvement of the selection over the population.

        For calibration the sign is flipped (lower absolute calibration is
        better), matching the paper's reporting.
        """
        baseline = self.population_performance[measure]
        selected = self.selected_performance[measure]
        if baseline == 0:
            return 0.0
        if measure in ("abs_calibration", "calibration"):
            return (abs(baseline) - abs(selected)) / abs(baseline)
        return (selected - baseline) / abs(baseline)


def evaluate_population(matchers: Sequence[HumanMatcher]) -> dict[str, float]:
    """Aggregate matching quality of a population against its references.

    Study drivers that compare several selection methods on the same cohort
    compute this once and pass it to :meth:`ExpertFilter.evaluate`.
    """
    performances = []
    for matcher in matchers:
        if matcher.reference is None:
            raise ValueError(f"matcher {matcher.matcher_id!r} has no reference match attached")
        performances.append(evaluate_matcher(matcher.history, matcher.reference))
    return population_performance(performances)


#: Backwards-compatible alias.
_evaluate_population = evaluate_population


class ExpertFilter:
    """Select experts with a fitted characterizer and measure the quality gain."""

    def __init__(
        self,
        characterizer,
        require_all_characteristics: bool = True,
        min_positive_characteristics: int = 4,
    ) -> None:
        self.characterizer = characterizer
        self.require_all_characteristics = require_all_characteristics
        self.min_positive_characteristics = min_positive_characteristics

    def _selection_mask(self, predictions: np.ndarray) -> np.ndarray:
        if self.require_all_characteristics:
            return predictions.sum(axis=1) == len(EXPERT_CHARACTERISTICS)
        return predictions.sum(axis=1) >= self.min_positive_characteristics

    def select(
        self,
        matchers: Sequence[HumanMatcher],
        early_decisions: Optional[int] = None,
    ) -> list[HumanMatcher]:
        """The matchers identified as experts.

        When ``early_decisions`` is given, prediction uses only each
        matcher's first ``early_decisions`` decisions (early identification),
        but the returned matchers keep their full histories.
        """
        if early_decisions is not None:
            inputs = [m.truncated(early_decisions) for m in matchers]
        else:
            inputs = list(matchers)
        predictions = self.characterizer.predict(inputs)
        mask = self._selection_mask(np.asarray(predictions))
        selected = [matcher for matcher, keep in zip(matchers, mask) if keep]
        if not selected:
            # Fall back to the most-expert matchers so downstream quality
            # comparisons always have a non-empty selection to report on.
            scores = np.asarray(predictions).sum(axis=1)
            best = int(np.argmax(scores))
            selected = [matchers[best]]
        return selected

    def evaluate(
        self,
        matchers: Sequence[HumanMatcher],
        method_name: str = "MExI",
        early_decisions: Optional[int] = None,
        population_perf: Optional[dict[str, float]] = None,
    ) -> FilteringResult:
        """Select experts and compare their quality to the full population.

        ``population_perf`` optionally supplies the precomputed quality of
        the full population (shared across methods by the outcome drivers).
        """
        selected = self.select(matchers, early_decisions=early_decisions)
        return FilteringResult(
            method=method_name,
            selected_ids=[m.matcher_id for m in selected],
            selected_performance=evaluate_population(selected),
            population_performance=(
                population_perf if population_perf is not None else evaluate_population(matchers)
            ),
            n_population=len(matchers),
        )


def median_half_decisions(matchers: Sequence[HumanMatcher]) -> int:
    """Half of the median number of decisions (the paper's early-identification cut)."""
    if not matchers:
        return 0
    median = float(np.median([m.n_decisions for m in matchers]))
    return max(1, int(median // 2))


def adjust_for_bias(
    matcher: HumanMatcher, calibration_estimate: float
) -> list[float]:
    """Bias-corrected confidences (the Ipeirotis-style adjustment of Section II-B).

    A predictably under-confident matcher's confidences can be shifted up by
    its estimated calibration (and vice versa), re-qualifying borderline
    correspondences for the final outcome.
    """
    return [
        float(np.clip(decision.confidence - calibration_estimate, 0.0, 1.0))
        for decision in matcher.history
    ]
