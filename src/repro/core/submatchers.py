"""Sub-matcher augmentation (Section IV-B1).

To give the sequence networks enough data, the paper augments the training
set with *sub-matchers*: contiguous windows of a matcher's decision
sequence, used during training only.  ``MExI_50`` uses windows of 50
decisions; ``MExI_70`` mixes window sizes 30, 40, ..., 70.  A sub-matcher
inherits its parent's expert labels (it is another, partial observation of
the same human).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.matching.matcher import HumanMatcher


@dataclass(frozen=True)
class SubMatcherConfig:
    """Window sizes and stride for sub-matcher generation.

    ``window_sizes`` follows the paper: ``(50,)`` for MExI_50, ``(30, 40,
    50, 60, 70)`` for MExI_70 and ``()`` for MExI_empty (no augmentation).
    ``relative`` rescales the window sizes by ``mean decisions / 55`` so
    reduced-scale cohorts (tests, benchmarks) keep the same augmentation
    ratio as the paper's 55-decision average.
    """

    window_sizes: tuple[int, ...] = (50,)
    stride_fraction: float = 0.5
    keep_originals: bool = True
    relative: bool = True
    reference_mean_decisions: float = 55.0

    def scaled_sizes(self, mean_decisions: float) -> list[int]:
        """Window sizes adapted to the cohort's mean history length."""
        if not self.relative or mean_decisions <= 0:
            return [size for size in self.window_sizes if size > 0]
        scale = mean_decisions / self.reference_mean_decisions
        return [max(4, int(round(size * scale))) for size in self.window_sizes]


#: The paper's three training variants.
MEXI_EMPTY = SubMatcherConfig(window_sizes=())
MEXI_50 = SubMatcherConfig(window_sizes=(50,))
MEXI_70 = SubMatcherConfig(window_sizes=(30, 40, 50, 60, 70))


def generate_submatchers(
    matchers: Sequence[HumanMatcher],
    labels: np.ndarray,
    config: SubMatcherConfig,
) -> tuple[list[HumanMatcher], np.ndarray]:
    """Augment a training set with sub-matchers.

    Parameters
    ----------
    matchers:
        Training matchers.
    labels:
        The ``(n_matchers, n_labels)`` label matrix; sub-matchers inherit
        their parent's row.
    config:
        Window sizes / stride.

    Returns
    -------
    (augmented_matchers, augmented_labels)
        The originals (when ``keep_originals``) followed by the generated
        sub-matchers, with the label matrix expanded to match.
    """
    label_matrix = np.asarray(labels)
    if label_matrix.shape[0] != len(matchers):
        raise ValueError("labels must have one row per matcher")

    augmented: list[HumanMatcher] = []
    augmented_labels: list[np.ndarray] = []

    if config.keep_originals:
        augmented.extend(matchers)
        augmented_labels.extend(label_matrix)

    if not config.window_sizes:
        return augmented, np.asarray(augmented_labels)

    mean_decisions = float(np.mean([m.n_decisions for m in matchers])) if matchers else 0.0
    sizes = config.scaled_sizes(mean_decisions)

    for matcher, label_row in zip(matchers, label_matrix):
        n_decisions = matcher.n_decisions
        for size in sizes:
            if size >= n_decisions or size < 2:
                continue
            stride = max(1, int(round(size * config.stride_fraction)))
            for start in range(0, n_decisions - size + 1, stride):
                submatcher = matcher.submatcher(start, size, suffix=f"#w{size}s{start}")
                if submatcher.history.is_empty:
                    continue
                augmented.append(submatcher)
                augmented_labels.append(label_row)

    return augmented, np.asarray(augmented_labels)
