"""Feature-set ablation (Section IV-E, Table III).

Two modes, as in the paper:

* ``include`` -- train MExI with a single feature set,
* ``exclude`` -- train MExI with all feature sets but one.

Each run reports the five accuracy measures (A_P, A_R, A_Res, A_Cal, A_ML),
so the table can be printed directly.

All eleven configurations share one :class:`FeatureBlockCache`: the offline
feature blocks (and the deterministic neural fits) are computed by the first
configuration that needs them and reused by the rest, so the study no longer
re-extracts the same population eleven times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.characterizer import MExICharacterizer, MExIVariant
from repro.core.expert_model import EXPERT_CHARACTERISTICS
from repro.core.features.cache import FeatureBlockCache
from repro.core.features.pipeline import FEATURE_SET_NAMES
from repro.matching.matcher import HumanMatcher
from repro.ml.metrics import accuracy_score, jaccard_multilabel_score
from repro.runtime import RuntimeSpec, resolve_runner


@dataclass
class AblationResult:
    """Accuracy measures of one ablation configuration."""

    mode: str          # "full", "include" or "exclude"
    feature_set: str   # the set included / excluded ("all" for the full model)
    accuracies: dict[str, float]

    def row(self) -> dict[str, float | str]:
        """A flat row for table printing."""
        return {"mode": self.mode, "feature_set": self.feature_set, **self.accuracies}


def evaluate_predictions(true_labels: np.ndarray, predicted_labels: np.ndarray) -> dict[str, float]:
    """The five accuracy measures of eqs. 6-7 on a label matrix pair."""
    true = np.asarray(true_labels, dtype=int)
    predicted = np.asarray(predicted_labels, dtype=int)
    if true.shape != predicted.shape:
        raise ValueError("label matrices must have the same shape")
    accuracies = {
        f"A_{short}": accuracy_score(true[:, index], predicted[:, index])
        for index, short in enumerate(("P", "R", "Res", "Cal"))
    }
    accuracies["A_ML"] = jaccard_multilabel_score(true, predicted)
    return accuracies


def _run_configuration(
    feature_sets: Sequence[str],
    train_matchers: Sequence[HumanMatcher],
    train_labels: np.ndarray,
    test_matchers: Sequence[HumanMatcher],
    test_labels: np.ndarray,
    variant: MExIVariant,
    neural_config: Optional[dict[str, dict]],
    random_state: int,
    cache: Optional[FeatureBlockCache] = None,
    classifier_bank: Optional[Callable[[], list]] = None,
) -> dict[str, float]:
    model = MExICharacterizer(
        variant=variant,
        feature_sets=feature_sets,
        neural_config=neural_config,
        random_state=random_state,
        cache=cache,
        classifier_bank=classifier_bank,
    )
    model.fit(train_matchers, train_labels)
    predictions = model.predict(test_matchers)
    return evaluate_predictions(test_labels, predictions)


def ablation_configurations(
    feature_sets: Sequence[str], include_full: bool = True
) -> list[tuple[str, str, tuple[str, ...]]]:
    """The ``(mode, name, feature_sets)`` rows of Table III, in paper order."""
    configurations: list[tuple[str, str, tuple[str, ...]]] = []
    if include_full:
        configurations.append(("full", "all", tuple(feature_sets)))
    configurations += [("include", name, (name,)) for name in feature_sets]
    if len(feature_sets) > 1:
        configurations += [
            ("exclude", name, tuple(other for other in feature_sets if other != name))
            for name in feature_sets
        ]
    return configurations


def _configuration_task(feature_sets, shared) -> dict[str, float]:
    """Run one ablation configuration (module-level for pickling).

    ``shared`` bundles everything the eleven configurations have in common
    (split populations, labels, settings, the pre-warmed cache) and is
    delivered once per process worker; only the configuration's feature-set
    tuple travels per task.
    """
    (
        train_matchers,
        train_labels,
        test_matchers,
        test_labels,
        variant,
        neural_config,
        random_state,
        cache,
        classifier_bank,
    ) = shared
    return _run_configuration(
        feature_sets,
        train_matchers,
        train_labels,
        test_matchers,
        test_labels,
        variant,
        neural_config,
        random_state,
        cache,
        classifier_bank,
    )


def _prewarm_cache(
    feature_sets: Sequence[str],
    train_matchers: Sequence[HumanMatcher],
    train_labels: np.ndarray,
    test_matchers: Sequence[HumanMatcher],
    variant: MExIVariant,
    neural_config: Optional[dict[str, dict]],
    random_state: int,
    cache: FeatureBlockCache,
) -> None:
    """Populate ``cache`` with everything the ablation configurations read.

    Builds a full-model characterizer exactly as :func:`_run_configuration`
    would and runs its :meth:`~repro.core.characterizer.MExICharacterizer.prewarm`
    — the extraction path of ``fit`` plus the test-block extraction of
    ``predict``, minus classifier training.  After this, every
    configuration — in any worker — only hits the cache, so ``process``
    workers that receive a pickled copy never recompute blocks.
    """
    model = MExICharacterizer(
        variant=variant,
        feature_sets=feature_sets,
        neural_config=neural_config,
        random_state=random_state,
        cache=cache,
    )
    model.prewarm(train_matchers, train_labels, test_matchers)


def run_ablation(
    train_matchers: Sequence[HumanMatcher],
    train_labels: np.ndarray,
    test_matchers: Sequence[HumanMatcher],
    test_labels: np.ndarray,
    variant: MExIVariant = MExIVariant.SUB_50,
    feature_sets: Sequence[str] = FEATURE_SET_NAMES,
    neural_config: Optional[dict[str, dict]] = None,
    random_state: int = 0,
    include_full: bool = True,
    cache: Optional[FeatureBlockCache] = None,
    use_cache: bool = True,
    classifier_bank: Optional[Callable[[], list]] = None,
    runtime: RuntimeSpec = None,
    prewarm: bool = True,
) -> list[AblationResult]:
    """Run the full include/exclude ablation and return one result per row.

    One :class:`FeatureBlockCache` is shared across every configuration
    (pass ``cache`` to share it with a larger study, or ``use_cache=False``
    to force the uncached re-extract-everything behaviour for comparison;
    combining the two is contradictory and rejected).  ``classifier_bank``
    overrides the candidate classifiers of every configuration (the
    feature-engine benchmark passes a scalar-split bank to reproduce the
    seed implementation's cost profile).

    The eleven configurations are independent (each seeds its own models
    from ``random_state``), so they fan out on ``runtime`` (or the
    ``REPRO_RUNTIME`` default).  Before a parallel run the cache is
    pre-warmed with every feature block and neural fit the configurations
    share, so thread workers only read it and process workers receive a
    complete pickled copy; rows are collected in configuration order and
    are bitwise identical to the serial loop on every backend.  Callers
    that hand in an already-warm cache can skip the redundant pass with
    ``prewarm=False``.  A parallel ``classifier_bank`` must be picklable
    for the ``process`` backend.
    """
    if not use_cache and cache is not None:
        raise ValueError("use_cache=False contradicts an explicitly supplied cache")
    if cache is None and use_cache:
        cache = FeatureBlockCache()

    runner = resolve_runner(runtime)
    configurations = ablation_configurations(feature_sets, include_full)
    if prewarm and runner.backend != "serial" and cache is not None:
        _prewarm_cache(
            feature_sets,
            train_matchers,
            train_labels,
            test_matchers,
            variant,
            neural_config,
            random_state,
            cache,
        )

    shared = (
        train_matchers,
        train_labels,
        test_matchers,
        test_labels,
        variant,
        neural_config,
        random_state,
        cache,
        classifier_bank,
    )
    accuracies_per_configuration = runner.map(
        _configuration_task, [sets for _, _, sets in configurations], context=shared
    )
    return [
        AblationResult(mode=mode, feature_set=name, accuracies=accuracies)
        for (mode, name, _), accuracies in zip(configurations, accuracies_per_configuration)
    ]


def most_important_set(
    results: Sequence[AblationResult], measure: str, mode: str = "include"
) -> str:
    """The feature set whose inclusion scores highest (or exclusion hurts most)."""
    candidates = [r for r in results if r.mode == mode]
    if not candidates:
        raise ValueError(f"no ablation results with mode {mode!r}")
    if mode == "include":
        best = max(candidates, key=lambda r: r.accuracies[measure])
    else:
        best = min(candidates, key=lambda r: r.accuracies[measure])
    return best.feature_set
