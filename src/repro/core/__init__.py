"""MExI: the paper's primary contribution.

* :mod:`repro.core.expert_model` -- the 4-way expertise characterization
  (Section II-B): thresholds, labels, profiles.
* :mod:`repro.core.features` -- the five feature sets Phi(D) (Section III-A)
  and the late-fusion feature pipeline.
* :mod:`repro.core.submatchers` -- sub-matcher augmentation (Section IV-B1).
* :mod:`repro.core.characterizer` -- the MExI characterizer (Section III-B).
* :mod:`repro.core.baselines` -- Rand, Rand_Freq, Conf, Qual. Test,
  Self-Assess, LRSM and BEH (Section IV-B2).
* :mod:`repro.core.filtering` -- expert filtering and outcome improvement
  (Section IV-F).
* :mod:`repro.core.ablation` -- include/exclude feature-set ablation
  (Section IV-E, Table III).
* :mod:`repro.core.importance` -- per-feature attribution (Table IV).
"""

from repro.core.expert_model import (
    EXPERT_CHARACTERISTICS,
    ExpertLabels,
    ExpertProfile,
    ExpertThresholds,
    characterize_matcher,
)
from repro.core.features import FeaturePipeline, FeatureSetName
from repro.core.submatchers import SubMatcherConfig, generate_submatchers
from repro.core.characterizer import MExICharacterizer, MExIVariant
from repro.core.baselines import (
    BaselineCharacterizer,
    RandomBaseline,
    FrequencyBaseline,
    ConfidenceBaseline,
    QualificationTestBaseline,
    SelfAssessmentBaseline,
    LRSMBaseline,
    BehavioralBaseline,
    default_baselines,
)
from repro.core.filtering import ExpertFilter, FilteringResult
from repro.core.ablation import AblationResult, run_ablation
from repro.core.importance import FeatureImportanceResult, permutation_importance

__all__ = [
    "EXPERT_CHARACTERISTICS",
    "ExpertLabels",
    "ExpertProfile",
    "ExpertThresholds",
    "characterize_matcher",
    "FeaturePipeline",
    "FeatureSetName",
    "SubMatcherConfig",
    "generate_submatchers",
    "MExICharacterizer",
    "MExIVariant",
    "BaselineCharacterizer",
    "RandomBaseline",
    "FrequencyBaseline",
    "ConfidenceBaseline",
    "QualificationTestBaseline",
    "SelfAssessmentBaseline",
    "LRSMBaseline",
    "BehavioralBaseline",
    "default_baselines",
    "ExpertFilter",
    "FilteringResult",
    "AblationResult",
    "run_ablation",
    "FeatureImportanceResult",
    "permutation_importance",
]
