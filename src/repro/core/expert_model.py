"""The 4-dimensional matching-expert model (Section II-B).

A matcher is characterised along four binary dimensions:

* **precise** -- precision above ``delta_P`` (0.5 in the paper),
* **thorough** -- recall above ``delta_R`` (0.5),
* **correlated** -- resolution above ``delta_Res`` (80th percentile of the
  training population) *and* statistically significant (p < .05),
* **calibrated** -- absolute calibration below ``delta_Cal`` (20th
  percentile of the training population's absolute calibrations).

The quantitative thresholds are fixed; the cognitive ones are fitted on the
training population, exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.matching.matcher import HumanMatcher
from repro.matching.metrics import MatcherPerformance, evaluate_matcher
from repro.stats.descriptive import percentile_threshold

#: Characteristic names in the canonical label order used everywhere.
EXPERT_CHARACTERISTICS: tuple[str, str, str, str] = (
    "precise",
    "thorough",
    "correlated",
    "calibrated",
)


@dataclass(frozen=True)
class ExpertLabels:
    """Binary expert labels for one matcher, in canonical order."""

    precise: bool
    thorough: bool
    correlated: bool
    calibrated: bool

    def to_array(self) -> np.ndarray:
        """Labels as a 0/1 integer vector (precise, thorough, correlated, calibrated)."""
        return np.array(
            [int(self.precise), int(self.thorough), int(self.correlated), int(self.calibrated)],
            dtype=int,
        )

    def to_signed_array(self) -> np.ndarray:
        """Labels as the paper's +1/-1 encoding."""
        return np.where(self.to_array() == 1, 1, -1)

    @classmethod
    def from_array(cls, values: Sequence[int]) -> "ExpertLabels":
        array = np.asarray(values)
        if array.shape != (4,):
            raise ValueError("expert labels require exactly four values")
        positive = array > 0
        return cls(
            precise=bool(positive[0]),
            thorough=bool(positive[1]),
            correlated=bool(positive[2]),
            calibrated=bool(positive[3]),
        )

    @property
    def is_full_expert(self) -> bool:
        """Expert on all four dimensions (the filter used in Section IV-F)."""
        return self.precise and self.thorough and self.correlated and self.calibrated

    @property
    def n_expert_dimensions(self) -> int:
        return int(self.to_array().sum())

    def __getitem__(self, characteristic: str) -> bool:
        if characteristic not in EXPERT_CHARACTERISTICS:
            raise KeyError(f"unknown expert characteristic {characteristic!r}")
        return bool(getattr(self, characteristic))


@dataclass
class ExpertThresholds:
    """The thresholds (delta) that turn measures into expert labels.

    ``delta_precision`` and ``delta_recall`` default to the paper's 0.5.
    ``delta_resolution`` and ``delta_calibration`` must be fitted on a
    training population (80th / 20th percentiles) unless given explicitly.
    """

    delta_precision: float = 0.5
    delta_recall: float = 0.5
    delta_resolution: Optional[float] = None
    delta_calibration: Optional[float] = None
    resolution_percentile: float = 80.0
    calibration_percentile: float = 20.0
    significance_level: float = 0.05

    @property
    def is_fitted(self) -> bool:
        return self.delta_resolution is not None and self.delta_calibration is not None

    def fit(self, performances: Sequence[MatcherPerformance]) -> "ExpertThresholds":
        """Fit the cognitive thresholds on the training population."""
        if not performances:
            raise ValueError("cannot fit thresholds on an empty population")
        resolutions = [p.resolution for p in performances]
        calibrations = [abs(p.calibration) for p in performances]
        self.delta_resolution = percentile_threshold(resolutions, self.resolution_percentile)
        self.delta_calibration = percentile_threshold(calibrations, self.calibration_percentile)
        return self

    def labels_for(self, performance: MatcherPerformance) -> ExpertLabels:
        """Apply the thresholds to a matcher's measured performance."""
        if not self.is_fitted:
            raise RuntimeError(
                "cognitive thresholds are not fitted; call fit() on the training population"
            )
        assert self.delta_resolution is not None and self.delta_calibration is not None
        return ExpertLabels(
            precise=performance.precision > self.delta_precision,
            thorough=performance.recall > self.delta_recall,
            correlated=(
                performance.resolution > self.delta_resolution
                and performance.resolution_p_value < self.significance_level
            ),
            calibrated=abs(performance.calibration) < self.delta_calibration,
        )


@dataclass
class ExpertProfile:
    """A matcher's measured performance together with its expert labels."""

    matcher_id: str
    performance: MatcherPerformance
    labels: ExpertLabels
    metadata: dict = field(default_factory=dict)


def characterize_matcher(
    matcher: HumanMatcher,
    thresholds: ExpertThresholds,
    random_state: Optional[int] = None,
) -> ExpertProfile:
    """Measure a matcher against its task's reference match and label it."""
    if matcher.reference is None:
        raise ValueError(f"matcher {matcher.matcher_id!r} has no reference match attached")
    performance = evaluate_matcher(matcher.history, matcher.reference, random_state=random_state)
    return ExpertProfile(
        matcher_id=matcher.matcher_id,
        performance=performance,
        labels=thresholds.labels_for(performance),
    )


def characterize_population(
    matchers: Sequence[HumanMatcher],
    thresholds: Optional[ExpertThresholds] = None,
    random_state: Optional[int] = None,
) -> tuple[list[ExpertProfile], ExpertThresholds]:
    """Measure a population, fitting cognitive thresholds on it if needed.

    Returns the per-matcher profiles and the (possibly freshly fitted)
    thresholds, so a test population can reuse the training thresholds.
    """
    performances = []
    for matcher in matchers:
        if matcher.reference is None:
            raise ValueError(f"matcher {matcher.matcher_id!r} has no reference match attached")
        performances.append(
            evaluate_matcher(matcher.history, matcher.reference, random_state=random_state)
        )

    if thresholds is None:
        thresholds = ExpertThresholds()
    if not thresholds.is_fitted:
        thresholds.fit(performances)

    profiles = [
        ExpertProfile(
            matcher_id=matcher.matcher_id,
            performance=performance,
            labels=thresholds.labels_for(performance),
        )
        for matcher, performance in zip(matchers, performances)
    ]
    return profiles, thresholds


def labels_matrix(profiles: Sequence[ExpertProfile]) -> np.ndarray:
    """Stack profile labels into an ``(n_matchers, 4)`` 0/1 matrix."""
    if not profiles:
        return np.zeros((0, len(EXPERT_CHARACTERISTICS)), dtype=int)
    return np.vstack([profile.labels.to_array() for profile in profiles])
