"""Neural-network substrate in pure NumPy (replaces the paper's Keras/TensorFlow).

The paper uses an LSTM over the decision sequence (Phi_Seq) and a fine-tuned
CNN over mouse heat maps (Phi_Spa), both trained with Adam and cross-entropy
and fused late as additional features.  This package provides just enough of
a deep-learning stack to run that pipeline on a CPU:

* :mod:`repro.nn.layers` -- Dense, activations, Dropout, Flatten
* :mod:`repro.nn.recurrent` -- an LSTM layer returning its last hidden state
* :mod:`repro.nn.conv` -- Conv2D, MaxPool2D, GlobalAveragePooling2D
* :mod:`repro.nn.losses` -- binary cross-entropy (and MSE)
* :mod:`repro.nn.optimizers` -- Adam and SGD
* :mod:`repro.nn.network` -- a Keras-like ``Sequential`` with ``fit``/``predict``
* :mod:`repro.nn.pretrained` -- a small CNN pre-trained on a synthetic
  screen-region task, standing in for the paper's fine-tuned ResNet
"""

from repro.nn.layers import Dense, Dropout, Flatten, ReLU, Sigmoid, Tanh
from repro.nn.recurrent import LSTM
from repro.nn.conv import Conv2D, GlobalAveragePooling2D, MaxPool2D
from repro.nn.losses import BinaryCrossEntropy, MeanSquaredError
from repro.nn.optimizers import SGD, Adam
from repro.nn.network import Sequential
from repro.nn.pretrained import build_heatmap_cnn, pretrain_on_synthetic_regions

__all__ = [
    "Dense",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Flatten",
    "LSTM",
    "Conv2D",
    "MaxPool2D",
    "GlobalAveragePooling2D",
    "BinaryCrossEntropy",
    "MeanSquaredError",
    "Adam",
    "SGD",
    "Sequential",
    "build_heatmap_cnn",
    "pretrain_on_synthetic_regions",
]
