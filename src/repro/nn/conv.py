"""Convolutional layers for the heat-map CNN (Phi_Spa).

Inputs are shaped ``(batch, height, width, channels)``.  The implementation
favours clarity over speed: heat maps are down-scaled to small grids (e.g.
24x32) before reaching the CNN, so explicit loops over kernel positions stay
affordable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Layer


class Conv2D(Layer):
    """Valid-padding 2-D convolution with stride 1."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        rng = np.random.default_rng(seed)
        fan_in = kernel_size * kernel_size * in_channels
        fan_out = kernel_size * kernel_size * out_channels
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        self.params = {
            "W": rng.uniform(
                -limit, limit, size=(kernel_size, kernel_size, in_channels, out_channels)
            ),
            "b": np.zeros(out_channels),
        }
        self.grads = {key: np.zeros_like(value) for key, value in self.params.items()}
        self._input: Optional[np.ndarray] = None

    def _patches(self, x: np.ndarray) -> np.ndarray:
        """Extract sliding patches shaped (batch, out_h, out_w, k*k*in_channels)."""
        batch, height, width, channels = x.shape
        k = self.kernel_size
        out_h = height - k + 1
        out_w = width - k + 1
        patches = np.zeros((batch, out_h, out_w, k * k * channels))
        for i in range(out_h):
            for j in range(out_w):
                patches[:, i, j, :] = x[:, i : i + k, j : j + k, :].reshape(batch, -1)
        return patches

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"Conv2D expects (batch, H, W, C), got shape {x.shape}")
        if x.shape[3] != self.in_channels:
            raise ValueError(
                f"Conv2D expected {self.in_channels} channels, got {x.shape[3]}"
            )
        if x.shape[1] < self.kernel_size or x.shape[2] < self.kernel_size:
            raise ValueError("input smaller than the convolution kernel")
        self._input = x
        patches = self._patches(x)
        kernel = self.params["W"].reshape(-1, self.out_channels)
        output = patches @ kernel + self.params["b"]
        return output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input is not None
        x = self._input
        batch, height, width, channels = x.shape
        k = self.kernel_size
        out_h = height - k + 1
        out_w = width - k + 1

        patches = self._patches(x).reshape(-1, k * k * channels)
        grad_flat = grad.reshape(-1, self.out_channels)

        self.grads["W"] = (patches.T @ grad_flat).reshape(self.params["W"].shape)
        self.grads["b"] = grad_flat.sum(axis=0)

        kernel = self.params["W"].reshape(-1, self.out_channels)
        d_patches = (grad_flat @ kernel.T).reshape(batch, out_h, out_w, k * k * channels)

        grad_input = np.zeros_like(x)
        for i in range(out_h):
            for j in range(out_w):
                grad_input[:, i : i + k, j : j + k, :] += d_patches[:, i, j, :].reshape(
                    batch, k, k, channels
                )
        return grad_input

    def output_dim(self, input_dim):
        if isinstance(input_dim, tuple) and len(input_dim) == 3:
            height, width, _ = input_dim
            k = self.kernel_size
            return (height - k + 1, width - k + 1, self.out_channels)
        return input_dim

    def config(self) -> dict:
        return {
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel_size": self.kernel_size,
        }

    def __repr__(self) -> str:
        return (
            f"Conv2D(in={self.in_channels}, out={self.out_channels}, "
            f"kernel={self.kernel_size})"
        )


class MaxPool2D(Layer):
    """Non-overlapping max pooling."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self._input: Optional[np.ndarray] = None
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"MaxPool2D expects (batch, H, W, C), got shape {x.shape}")
        p = self.pool_size
        batch, height, width, channels = x.shape
        out_h = height // p
        out_w = width // p
        trimmed = x[:, : out_h * p, : out_w * p, :]
        self._input = trimmed
        reshaped = trimmed.reshape(batch, out_h, p, out_w, p, channels)
        output = reshaped.max(axis=(2, 4))
        # Mask of max positions for the backward pass.
        expanded = np.repeat(np.repeat(output, p, axis=1), p, axis=2)
        self._mask = trimmed == expanded
        return output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input is not None and self._mask is not None
        p = self.pool_size
        expanded = np.repeat(np.repeat(grad, p, axis=1), p, axis=2)
        return expanded * self._mask

    def output_dim(self, input_dim):
        if isinstance(input_dim, tuple) and len(input_dim) == 3:
            height, width, channels = input_dim
            return (height // self.pool_size, width // self.pool_size, channels)
        return input_dim

    def config(self) -> dict:
        return {"pool_size": self.pool_size}

    def __repr__(self) -> str:
        return f"MaxPool2D(pool_size={self.pool_size})"


class GlobalAveragePooling2D(Layer):
    """Average each channel over the spatial dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(
                f"GlobalAveragePooling2D expects (batch, H, W, C), got shape {x.shape}"
            )
        self._input_shape = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input_shape is not None
        batch, height, width, channels = self._input_shape
        spread = grad[:, None, None, :] / (height * width)
        return np.broadcast_to(spread, self._input_shape).copy()

    def output_dim(self, input_dim):
        if isinstance(input_dim, tuple) and len(input_dim) == 3:
            return input_dim[2]
        return input_dim
