"""Convolutional layers for the heat-map CNN (Phi_Spa).

Inputs are shaped ``(batch, height, width, channels)``.  The forward/backward
hot paths are vectorized:

* patch extraction (im2col) uses ``sliding_window_view`` stride tricks in
  place of the original double loop over output pixels, producing the exact
  same patch matrix — the subsequent matrix products are therefore
  **bitwise identical** to the loop implementation;
* the input-gradient scatter (col2im) accumulates one slice-add per kernel
  offset, iterated in descending offset order so every input cell receives
  its contributions in the same order as the original per-pixel loop —
  again bitwise identical.

The original loops are retained as the oracle (selected via
``repro.kernels``, e.g. ``REPRO_KERNELS=oracle``) and asserted against in
``tests/nn/test_kernel_equivalence.py`` and the kernel benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.kernels import oracle_active
from repro.nn.layers import Layer


def extract_patches_loop(x: np.ndarray, kernel_size: int) -> np.ndarray:
    """Original loop-over-output-pixels patch extraction (retained oracle)."""
    batch, height, width, channels = x.shape
    k = kernel_size
    out_h = height - k + 1
    out_w = width - k + 1
    patches = np.zeros((batch, out_h, out_w, k * k * channels))
    for i in range(out_h):
        for j in range(out_w):
            patches[:, i, j, :] = x[:, i : i + k, j : j + k, :].reshape(batch, -1)
    return patches


def extract_patches(x: np.ndarray, kernel_size: int) -> np.ndarray:
    """im2col via stride tricks: (batch, out_h, out_w, k*k*channels).

    Element-for-element identical to :func:`extract_patches_loop` (the
    reshape copies the windows into the same row-major patch layout).
    """
    batch = x.shape[0]
    k = kernel_size
    # (batch, out_h, out_w, channels, k, k) -> (batch, out_h, out_w, k, k, C)
    windows = sliding_window_view(x, (k, k), axis=(1, 2))
    patches = windows.transpose(0, 1, 2, 4, 5, 3).reshape(
        batch, windows.shape[1], windows.shape[2], -1
    )
    if patches.dtype != np.float64:
        patches = patches.astype(np.float64)
    return patches


def scatter_patch_grads_loop(
    d_patches: np.ndarray, input_shape: tuple[int, ...], kernel_size: int
) -> np.ndarray:
    """Original per-output-pixel col2im accumulation (retained oracle)."""
    batch, height, width, channels = input_shape
    k = kernel_size
    out_h = height - k + 1
    out_w = width - k + 1
    grad_input = np.zeros(input_shape)
    for i in range(out_h):
        for j in range(out_w):
            grad_input[:, i : i + k, j : j + k, :] += d_patches[:, i, j, :].reshape(
                batch, k, k, channels
            )
    return grad_input


def scatter_patch_grads(
    d_patches: np.ndarray, input_shape: tuple[int, ...], kernel_size: int
) -> np.ndarray:
    """Vectorized col2im: one slice-add per kernel offset.

    An input cell ``(r, c)`` receives contributions from patches
    ``(i, j) = (r - di, c - dj)``; iterating the kernel offsets ``(di, dj)``
    in *descending* order adds those contributions in ascending ``(i, j)``
    order — exactly the order of the oracle loop — so the accumulated float
    sums are bitwise identical.
    """
    batch, height, width, channels = input_shape
    k = kernel_size
    out_h = height - k + 1
    out_w = width - k + 1
    blocks = d_patches.reshape(batch, out_h, out_w, k, k, channels)
    grad_input = np.zeros(input_shape)
    for di in range(k - 1, -1, -1):
        for dj in range(k - 1, -1, -1):
            grad_input[:, di : di + out_h, dj : dj + out_w, :] += blocks[:, :, :, di, dj, :]
    return grad_input


class Conv2D(Layer):
    """Valid-padding 2-D convolution with stride 1."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        rng = np.random.default_rng(seed)
        fan_in = kernel_size * kernel_size * in_channels
        fan_out = kernel_size * kernel_size * out_channels
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        self.params = {
            "W": rng.uniform(
                -limit, limit, size=(kernel_size, kernel_size, in_channels, out_channels)
            ),
            "b": np.zeros(out_channels),
        }
        self.grads = {key: np.zeros_like(value) for key, value in self.params.items()}
        self._input: Optional[np.ndarray] = None

    def _patches(self, x: np.ndarray) -> np.ndarray:
        """Extract sliding patches shaped (batch, out_h, out_w, k*k*in_channels)."""
        if oracle_active():
            return extract_patches_loop(x, self.kernel_size)
        return extract_patches(x, self.kernel_size)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"Conv2D expects (batch, H, W, C), got shape {x.shape}")
        if x.shape[3] != self.in_channels:
            raise ValueError(
                f"Conv2D expected {self.in_channels} channels, got {x.shape[3]}"
            )
        if x.shape[1] < self.kernel_size or x.shape[2] < self.kernel_size:
            raise ValueError("input smaller than the convolution kernel")
        self._input = x
        patches = self._patches(x)
        kernel = self.params["W"].reshape(-1, self.out_channels)
        output = patches @ kernel + self.params["b"]
        return output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input is not None
        x = self._input
        batch, height, width, channels = x.shape
        k = self.kernel_size
        out_h = height - k + 1
        out_w = width - k + 1

        patches = self._patches(x).reshape(-1, k * k * channels)
        grad_flat = grad.reshape(-1, self.out_channels)

        self.grads["W"] = (patches.T @ grad_flat).reshape(self.params["W"].shape)
        self.grads["b"] = grad_flat.sum(axis=0)

        kernel = self.params["W"].reshape(-1, self.out_channels)
        d_patches = (grad_flat @ kernel.T).reshape(batch, out_h, out_w, k * k * channels)

        if oracle_active():
            return scatter_patch_grads_loop(d_patches, x.shape, k)
        return scatter_patch_grads(d_patches, x.shape, k)

    def output_dim(self, input_dim):
        if isinstance(input_dim, tuple) and len(input_dim) == 3:
            height, width, _ = input_dim
            k = self.kernel_size
            return (height - k + 1, width - k + 1, self.out_channels)
        return input_dim

    def config(self) -> dict:
        return {
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel_size": self.kernel_size,
        }

    def __repr__(self) -> str:
        return (
            f"Conv2D(in={self.in_channels}, out={self.out_channels}, "
            f"kernel={self.kernel_size})"
        )


def maxpool_forward_loop(x: np.ndarray, pool_size: int) -> np.ndarray:
    """Per-output-pixel max pooling (retained scalar oracle)."""
    p = pool_size
    batch, height, width, channels = x.shape
    out_h = height // p
    out_w = width // p
    output = np.zeros((batch, out_h, out_w, channels))
    for i in range(out_h):
        for j in range(out_w):
            output[:, i, j, :] = x[:, i * p : (i + 1) * p, j * p : (j + 1) * p, :].max(
                axis=(1, 2)
            )
    return output


def maxpool_backward_loop(
    x: np.ndarray, output: np.ndarray, grad: np.ndarray, pool_size: int
) -> np.ndarray:
    """Per-output-pixel gradient routing to max positions (oracle).

    Ties within a window all receive the gradient, matching the fast
    mask-based path.
    """
    p = pool_size
    batch, out_h, out_w, channels = output.shape
    grad_input = np.zeros((batch, out_h * p, out_w * p, channels))
    for i in range(out_h):
        for j in range(out_w):
            window = x[:, i * p : (i + 1) * p, j * p : (j + 1) * p, :]
            mask = window == output[:, i, None, j, None, :].reshape(batch, 1, 1, channels)
            grad_input[:, i * p : (i + 1) * p, j * p : (j + 1) * p, :] = (
                mask * grad[:, i, None, j, None, :].reshape(batch, 1, 1, channels)
            )
    return grad_input


class MaxPool2D(Layer):
    """Non-overlapping max pooling."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self._input: Optional[np.ndarray] = None
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"MaxPool2D expects (batch, H, W, C), got shape {x.shape}")
        p = self.pool_size
        batch, height, width, channels = x.shape
        out_h = height // p
        out_w = width // p
        trimmed = x[:, : out_h * p, : out_w * p, :]
        self._input = trimmed
        if oracle_active():
            output = maxpool_forward_loop(trimmed, p)
        else:
            reshaped = trimmed.reshape(batch, out_h, p, out_w, p, channels)
            output = reshaped.max(axis=(2, 4))
        self._output = output
        return output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input is not None and self._output is not None
        p = self.pool_size
        trimmed = self._input
        if oracle_active():
            return maxpool_backward_loop(trimmed, self._output, grad, p)
        batch, out_h, out_w, channels = self._output.shape
        reshaped = trimmed.reshape(batch, out_h, p, out_w, p, channels)
        # Mask of max positions (ties all receive the gradient), built in
        # the reshaped space instead of via two materialised np.repeat's.
        mask = reshaped == self._output[:, :, None, :, None, :]
        spread = mask * grad[:, :, None, :, None, :]
        return spread.reshape(batch, out_h * p, out_w * p, channels)

    def output_dim(self, input_dim):
        if isinstance(input_dim, tuple) and len(input_dim) == 3:
            height, width, channels = input_dim
            return (height // self.pool_size, width // self.pool_size, channels)
        return input_dim

    def config(self) -> dict:
        return {"pool_size": self.pool_size}

    def __repr__(self) -> str:
        return f"MaxPool2D(pool_size={self.pool_size})"


class GlobalAveragePooling2D(Layer):
    """Average each channel over the spatial dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(
                f"GlobalAveragePooling2D expects (batch, H, W, C), got shape {x.shape}"
            )
        self._input_shape = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input_shape is not None
        batch, height, width, channels = self._input_shape
        spread = grad[:, None, None, :] / (height * width)
        return np.broadcast_to(spread, self._input_shape).copy()

    def output_dim(self, input_dim):
        if isinstance(input_dim, tuple) and len(input_dim) == 3:
            return input_dim[2]
        return input_dim
