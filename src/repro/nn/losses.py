"""Loss functions: binary cross-entropy (the paper's loss) and MSE."""

from __future__ import annotations

import numpy as np


class Loss:
    """A differentiable loss: ``value`` and ``gradient`` with respect to predictions."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class BinaryCrossEntropy(Loss):
    """Mean binary cross-entropy over all outputs (expects probabilities)."""

    def __init__(self, epsilon: float = 1e-7) -> None:
        self.epsilon = epsilon

    def _clip(self, predictions: np.ndarray) -> np.ndarray:
        return np.clip(predictions, self.epsilon, 1.0 - self.epsilon)

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        p = self._clip(predictions)
        t = np.asarray(targets, dtype=float).reshape(p.shape)
        losses = -(t * np.log(p) + (1.0 - t) * np.log(1.0 - p))
        return float(losses.mean())

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        p = self._clip(predictions)
        t = np.asarray(targets, dtype=float).reshape(p.shape)
        return (p - t) / (p * (1.0 - p)) / p.size


class MeanSquaredError(Loss):
    """Mean squared error."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        t = np.asarray(targets, dtype=float).reshape(predictions.shape)
        return float(((predictions - t) ** 2).mean())

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        t = np.asarray(targets, dtype=float).reshape(predictions.shape)
        return 2.0 * (predictions - t) / predictions.size
