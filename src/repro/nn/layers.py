"""Core layers: Dense, activations, Dropout, Flatten.

All layers share a tiny protocol: ``forward(x, training)`` returns the layer
output; ``backward(grad)`` consumes the gradient of the loss with respect to
the output and returns the gradient with respect to the input, accumulating
parameter gradients in ``grads`` keyed like ``params``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class Layer:
    """Base layer: parameter-free by default."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def output_dim(self, input_dim):
        """Best-effort output shape given an input shape (used for stacking)."""
        return input_dim

    def config(self) -> dict:
        """JSON-able constructor arguments reproducing this layer's shape.

        Used by :mod:`repro.serve.artifacts` to rebuild the layer before its
        parameters are restored; parameter-free layers need no arguments.
        """
        return {}

    def __repr__(self) -> str:
        return type(self).__name__ + "()"


class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, seed: Optional[int] = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        rng = np.random.default_rng(seed)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": rng.uniform(-limit, limit, size=(in_features, out_features)),
            "b": np.zeros(out_features),
        }
        self.grads = {key: np.zeros_like(value) for key, value in self.params.items()}
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected {self.in_features} input features, got {x.shape[1]}"
            )
        self._input = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input is not None
        self.grads["W"] = self._input.T @ grad
        self.grads["b"] = grad.sum(axis=0)
        return grad @ self.params["W"].T

    def output_dim(self, input_dim):
        return self.out_features

    def config(self) -> dict:
        return {"in_features": self.in_features, "out_features": self.out_features}

    def __repr__(self) -> str:
        return f"Dense({self.in_features}, {self.out_features})"


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad * self._mask


class Sigmoid(Layer):
    """Logistic activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        clipped = np.clip(x, -30, 30)
        self._output = 1.0 / (1.0 + np.exp(-clipped))
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._output is not None
        return grad * self._output * (1.0 - self._output)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._output is not None
        return grad * (1.0 - self._output**2)


class Dropout(Layer):
    """Inverted dropout: active only during training."""

    def __init__(self, rate: float = 0.5, seed: Optional[int] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must lie in [0, 1)")
        self.rate = rate
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep_probability = 1.0 - self.rate
        self._mask = self._rng.random(x.shape) < keep_probability
        return x * self._mask / keep_probability

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask / (1.0 - self.rate)

    def config(self) -> dict:
        return {"rate": self.rate, "seed": self.seed}

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"


class Flatten(Layer):
    """Flatten all dimensions except the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input_shape is not None
        return grad.reshape(self._input_shape)

    def output_dim(self, input_dim):
        if isinstance(input_dim, tuple):
            size = 1
            for dim in input_dim:
                size *= dim
            return size
        return input_dim
