"""An LSTM layer (last-hidden-state output) with backpropagation through time.

Phi_Seq processes, per matcher, the sequence of (confidence, elapsed time,
consensus) triplets.  The layer consumes a batch of sequences shaped
``(batch, time, features)`` and emits the final hidden state shaped
``(batch, hidden)``, matching the paper's "LSTM hidden layer of 64 nodes
followed by dropout and a dense layer".

The fast path steps the **whole padded batch** with a single fused-gate
matrix multiply per timestep (the four gate weight matrices concatenated
into one ``(features + hidden, 4 * hidden)`` operand), instead of four
separate per-gate products; the backward pass mirrors this with one fused
pre-activation gradient product per timestep.  The original per-gate
implementation is retained as the oracle (``REPRO_KERNELS=oracle``) and the
two are asserted equivalent to tight tolerance (fusing the GEMM operands
may reassociate floating-point accumulation) in
``tests/nn/test_kernel_equivalence.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels import oracle_active
from repro.nn.layers import Layer

# Fused operand layout: the three sigmoid gates first so one sigmoid
# evaluation covers them, then the tanh candidate gate.
_GATES = ("f", "i", "o", "c")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class LSTM(Layer):
    """A single LSTM layer returning its last hidden state."""

    def __init__(self, input_dim: int, hidden_dim: int, seed: Optional[int] = None) -> None:
        super().__init__()
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("LSTM dimensions must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        rng = np.random.default_rng(seed)
        concat_dim = input_dim + hidden_dim
        limit = np.sqrt(6.0 / (concat_dim + hidden_dim))

        def init(shape: tuple[int, ...]) -> np.ndarray:
            return rng.uniform(-limit, limit, size=shape)

        # Gate weights act on the concatenation [x_t, h_{t-1}].
        self.params = {
            "W_f": init((concat_dim, hidden_dim)),
            "W_i": init((concat_dim, hidden_dim)),
            "W_c": init((concat_dim, hidden_dim)),
            "W_o": init((concat_dim, hidden_dim)),
            "b_f": np.ones(hidden_dim),  # forget bias of 1 (standard trick)
            "b_i": np.zeros(hidden_dim),
            "b_c": np.zeros(hidden_dim),
            "b_o": np.zeros(hidden_dim),
        }
        self.grads = {key: np.zeros_like(value) for key, value in self.params.items()}
        self._cache: Optional[dict] = None

    def _fused_weights(self) -> tuple[np.ndarray, np.ndarray]:
        """The four gate operands concatenated into one (D+H, 4H) matrix."""
        weights = np.concatenate([self.params[f"W_{g}"] for g in _GATES], axis=1)
        biases = np.concatenate([self.params[f"b_{g}"] for g in _GATES])
        return weights, biases

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(f"LSTM expects (batch, time, features), got shape {x.shape}")
        if x.shape[2] != self.input_dim:
            raise ValueError(
                f"LSTM expected {self.input_dim} input features, got {x.shape[2]}"
            )
        if oracle_active():
            return self._forward_gates(x)
        return self._forward_fused(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        if self._cache["impl"] == "gates":
            return self._backward_gates(grad)
        return self._backward_fused(grad)

    # ------------------------------------------------------------------ #
    # Fast path: one fused-gate GEMM per timestep over the whole batch
    # ------------------------------------------------------------------ #

    def _forward_fused(self, x: np.ndarray) -> np.ndarray:
        batch, time_steps, _ = x.shape
        hidden = self.hidden_dim
        weights, biases = self._fused_weights()
        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        steps = []
        for t in range(time_steps):
            concat = np.concatenate([x[:, t, :], h], axis=1)
            z = concat @ weights + biases
            sig = _sigmoid(z[:, : 3 * hidden])
            f = sig[:, :hidden]
            i = sig[:, hidden : 2 * hidden]
            o = sig[:, 2 * hidden :]
            c_hat = np.tanh(z[:, 3 * hidden :])
            c_prev = c
            c = f * c_prev + i * c_hat
            h = o * np.tanh(c)
            steps.append((concat, f, i, c_hat, o, c, c_prev))
        self._cache = {"impl": "fused", "x": x, "steps": steps, "weights": weights}
        return h

    def _backward_fused(self, grad: np.ndarray) -> np.ndarray:
        cache = self._cache
        x = cache["x"]
        batch, time_steps, _ = x.shape
        hidden = self.hidden_dim
        weights = cache["weights"]

        d_weights = np.zeros_like(weights)
        d_biases = np.zeros(4 * hidden)
        grad_input = np.zeros_like(x)
        dh_next = grad
        dc_next = np.zeros((batch, hidden))

        for t in reversed(range(time_steps)):
            concat, f, i, c_hat, o, c, c_prev = cache["steps"][t]

            tanh_c = np.tanh(c)
            do = dh_next * tanh_c
            dc = dh_next * o * (1.0 - tanh_c**2) + dc_next

            d_z = np.empty((batch, 4 * hidden))
            d_z[:, :hidden] = (dc * c_prev) * f * (1.0 - f)
            d_z[:, hidden : 2 * hidden] = (dc * c_hat) * i * (1.0 - i)
            d_z[:, 2 * hidden : 3 * hidden] = do * o * (1.0 - o)
            d_z[:, 3 * hidden :] = (dc * i) * (1.0 - c_hat**2)

            d_weights += concat.T @ d_z
            d_biases += d_z.sum(axis=0)

            d_concat = d_z @ weights.T
            grad_input[:, t, :] = d_concat[:, : self.input_dim]
            dh_next = d_concat[:, self.input_dim :]
            dc_next = dc * f

        for index, gate in enumerate(_GATES):
            self.grads[f"W_{gate}"] = d_weights[:, index * hidden : (index + 1) * hidden].copy()
            self.grads[f"b_{gate}"] = d_biases[index * hidden : (index + 1) * hidden].copy()
        return grad_input

    # ------------------------------------------------------------------ #
    # Retained oracle: per-gate products (the original implementation)
    # ------------------------------------------------------------------ #

    def _forward_gates(self, x: np.ndarray) -> np.ndarray:
        batch, time_steps, _ = x.shape
        h = np.zeros((batch, self.hidden_dim))
        c = np.zeros((batch, self.hidden_dim))
        steps = []
        for t in range(time_steps):
            concat = np.concatenate([x[:, t, :], h], axis=1)
            f = _sigmoid(concat @ self.params["W_f"] + self.params["b_f"])
            i = _sigmoid(concat @ self.params["W_i"] + self.params["b_i"])
            c_hat = np.tanh(concat @ self.params["W_c"] + self.params["b_c"])
            o = _sigmoid(concat @ self.params["W_o"] + self.params["b_o"])
            c_prev = c
            c = f * c_prev + i * c_hat
            h = o * np.tanh(c)
            steps.append(
                {"concat": concat, "f": f, "i": i, "c_hat": c_hat, "o": o, "c": c, "c_prev": c_prev}
            )
        self._cache = {"impl": "gates", "x": x, "steps": steps}
        return h

    def _backward_gates(self, grad: np.ndarray) -> np.ndarray:
        x = self._cache["x"]
        steps = self._cache["steps"]
        batch, time_steps, _ = x.shape

        for key in self.grads:
            self.grads[key] = np.zeros_like(self.params[key])

        grad_input = np.zeros_like(x)
        dh_next = grad
        dc_next = np.zeros((batch, self.hidden_dim))

        for t in reversed(range(time_steps)):
            step = steps[t]
            tanh_c = np.tanh(step["c"])
            do = dh_next * tanh_c
            dc = dh_next * step["o"] * (1.0 - tanh_c**2) + dc_next
            df = dc * step["c_prev"]
            di = dc * step["c_hat"]
            dc_hat = dc * step["i"]
            dc_prev = dc * step["f"]

            # Pre-activation gradients.
            do_pre = do * step["o"] * (1.0 - step["o"])
            df_pre = df * step["f"] * (1.0 - step["f"])
            di_pre = di * step["i"] * (1.0 - step["i"])
            dc_hat_pre = dc_hat * (1.0 - step["c_hat"] ** 2)

            concat = step["concat"]
            self.grads["W_f"] += concat.T @ df_pre
            self.grads["W_i"] += concat.T @ di_pre
            self.grads["W_c"] += concat.T @ dc_hat_pre
            self.grads["W_o"] += concat.T @ do_pre
            self.grads["b_f"] += df_pre.sum(axis=0)
            self.grads["b_i"] += di_pre.sum(axis=0)
            self.grads["b_c"] += dc_hat_pre.sum(axis=0)
            self.grads["b_o"] += do_pre.sum(axis=0)

            d_concat = (
                df_pre @ self.params["W_f"].T
                + di_pre @ self.params["W_i"].T
                + dc_hat_pre @ self.params["W_c"].T
                + do_pre @ self.params["W_o"].T
            )
            grad_input[:, t, :] = d_concat[:, : self.input_dim]
            dh_next = d_concat[:, self.input_dim :]
            dc_next = dc_prev

        return grad_input

    def output_dim(self, input_dim):
        return self.hidden_dim

    def config(self) -> dict:
        return {"input_dim": self.input_dim, "hidden_dim": self.hidden_dim}

    def __repr__(self) -> str:
        return f"LSTM(input_dim={self.input_dim}, hidden_dim={self.hidden_dim})"


def pad_sequences(sequences: list[np.ndarray], max_length: Optional[int] = None) -> np.ndarray:
    """Pad / truncate variable-length sequences into a dense (batch, time, feat) array.

    Sequences shorter than ``max_length`` are front-padded with zeros so the
    informative suffix sits next to the LSTM's final hidden state; longer
    sequences keep their most recent ``max_length`` steps.
    """
    if not sequences:
        return np.zeros((0, 0, 0))
    feature_dim = sequences[0].shape[1] if sequences[0].ndim == 2 else 1
    lengths = [s.shape[0] for s in sequences]
    target = max_length or max(lengths)
    batch = np.zeros((len(sequences), target, feature_dim))
    for index, sequence in enumerate(sequences):
        array = np.asarray(sequence, dtype=float)
        if array.ndim == 1:
            array = array.reshape(-1, 1)
        if array.shape[0] > target:
            array = array[-target:]
        batch[index, target - array.shape[0] :, :] = array
    return batch


def sequence_length_mask(lengths: list[int], max_length: int) -> np.ndarray:
    """A ``(batch, max_length)`` 0/1 mask matching :func:`pad_sequences`.

    Entry ``(b, t)`` is 1 where timestep ``t`` of padded sequence ``b``
    carries real (non-padding) data — the front-padding convention puts the
    real suffix at the *end* of the padded axis.
    """
    lengths_array = np.minimum(np.asarray(lengths, dtype=np.int64), max_length)
    steps = np.arange(max_length)
    return (steps[None, :] >= (max_length - lengths_array[:, None])).astype(float)
