"""A Keras-like ``Sequential`` model with mini-batch training."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import BinaryCrossEntropy, Loss
from repro.nn.optimizers import Adam, Optimizer


class Sequential:
    """A stack of layers trained end-to-end with a loss and an optimizer."""

    def __init__(self, layers: Sequence[Layer] = ()) -> None:
        self.layers: list[Layer] = list(layers)
        self.loss: Loss = BinaryCrossEntropy()
        self.optimizer: Optimizer = Adam()
        self.history_: list[float] = []

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer and return self (allows chaining)."""
        self.layers.append(layer)
        return self

    def compile(self, loss: Optional[Loss] = None, optimizer: Optional[Optimizer] = None) -> "Sequential":
        """Set the loss and optimizer (defaults: binary cross-entropy + Adam)."""
        if loss is not None:
            self.loss = loss
        if optimizer is not None:
            self.optimizer = optimizer
        return self

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        output = x
        for layer in self.layers:
            output = layer.forward(output, training=training)
        return output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 16,
        shuffle: bool = True,
        random_state: Optional[int] = None,
        verbose: bool = False,
    ) -> "Sequential":
        """Train the network with mini-batch gradient descent."""
        features = np.asarray(X, dtype=float)
        targets = np.asarray(y, dtype=float)
        if targets.ndim == 1:
            targets = targets.reshape(-1, 1)
        if features.shape[0] != targets.shape[0]:
            raise ValueError("X and y must have the same number of samples")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        rng = np.random.default_rng(random_state)
        n_samples = features.shape[0]
        batch_size = max(1, min(batch_size, n_samples))
        self.history_ = []

        for epoch in range(epochs):
            order = np.arange(n_samples)
            if shuffle:
                rng.shuffle(order)
            epoch_losses = []
            for start in range(0, n_samples, batch_size):
                batch_indices = order[start : start + batch_size]
                batch_X = features[batch_indices]
                batch_y = targets[batch_indices]
                predictions = self.forward(batch_X, training=True)
                epoch_losses.append(self.loss.value(predictions, batch_y))
                grad = self.loss.gradient(predictions, batch_y)
                self.backward(grad)
                self.optimizer.step(self.layers)
            mean_loss = float(np.mean(epoch_losses))
            self.history_.append(mean_loss)
            if verbose:
                print(f"epoch {epoch + 1}/{epochs} loss={mean_loss:.4f}")
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Network outputs in inference mode (dropout disabled)."""
        return self.forward(np.asarray(X, dtype=float), training=False)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def n_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(parameter.size for layer in self.layers for parameter in layer.params.values())

    def get_weights(self) -> list[dict[str, np.ndarray]]:
        """Copies of every layer's parameters (for checkpointing in tests)."""
        return [
            {name: parameter.copy() for name, parameter in layer.params.items()}
            for layer in self.layers
        ]

    def set_weights(self, weights: list[dict[str, np.ndarray]]) -> None:
        """Restore parameters captured with :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ValueError("weights list does not match the number of layers")
        for layer, layer_weights in zip(self.layers, weights):
            for name, value in layer_weights.items():
                layer.params[name][...] = value

    def get_state(self) -> dict:
        """A full in-process training checkpoint: weights, optimizer, history.

        Unlike :meth:`get_weights`, the returned state also carries the
        optimizer's moments / step counter, so restoring it with
        :meth:`set_state` resumes training where the checkpoint left off.
        For *on-disk* checkpoints use :func:`repro.serve.save_model`, whose
        codec persists the same information (per-layer parameters plus
        :meth:`Optimizer.get_state`) in the versioned bundle format.
        """
        return {
            "weights": self.get_weights(),
            "optimizer": self.optimizer.get_state(),
            "history": list(self.history_),
        }

    def set_state(self, state: dict) -> None:
        """Restore a checkpoint captured with :meth:`get_state`.

        Raises
        ------
        ValueError
            If the weights do not match the current layer stack.
        """
        self.set_weights(state["weights"])
        self.optimizer.set_state(state.get("optimizer", {}))
        self.history_ = [float(value) for value in state.get("history", [])]

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"
