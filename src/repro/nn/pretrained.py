"""A small "pre-trained" CNN standing in for the paper's fine-tuned ResNet.

The paper fine-tunes an ImageNet-pre-trained ResNet on mouse heat maps
because its behavioural dataset is small.  Without network access or a GPU
we reproduce the *transfer-learning code path* rather than the specific
backbone: a compact CNN is first pre-trained on a synthetic screen-region
classification task (telling apart heat maps concentrated on different
screen regions), then its convolutional trunk is reused and fine-tuned on
the real objective (predicting an expertise label from a matcher's heat
map).  The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.conv import Conv2D, GlobalAveragePooling2D, MaxPool2D
from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.losses import BinaryCrossEntropy
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam

#: Heat maps are down-scaled to this (rows, cols) grid before entering the CNN.
HEATMAP_INPUT_SHAPE: tuple[int, int] = (16, 20)


def build_heatmap_cnn(
    input_shape: tuple[int, int] = HEATMAP_INPUT_SHAPE,
    n_filters: int = 4,
    seed: Optional[int] = None,
) -> Sequential:
    """Build the heat-map CNN: conv -> pool -> conv -> GAP -> dense -> sigmoid."""
    rows, cols = input_shape
    if rows < 8 or cols < 8:
        raise ValueError("heat-map input must be at least 8x8")
    network = Sequential(
        [
            Conv2D(1, n_filters, kernel_size=3, seed=seed),
            ReLU(),
            MaxPool2D(pool_size=2),
            Conv2D(n_filters, n_filters * 2, kernel_size=3, seed=None if seed is None else seed + 1),
            ReLU(),
            GlobalAveragePooling2D(),
            Dense(n_filters * 2, 16, seed=None if seed is None else seed + 2),
            ReLU(),
            Dense(16, 1, seed=None if seed is None else seed + 3),
            Sigmoid(),
        ]
    )
    network.compile(loss=BinaryCrossEntropy(), optimizer=Adam(learning_rate=0.005))
    return network


def _synthetic_region_maps(
    n_samples: int,
    input_shape: tuple[int, int],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Heat maps concentrated in the top vs. bottom half of the screen.

    The binary task (is the activity concentrated at the bottom, where the
    matching matrix sits in the Ontobuilder UI?) gives the convolution
    filters a head start on the spatial statistics of real heat maps.
    """
    rows, cols = input_shape
    maps = np.zeros((n_samples, rows, cols, 1))
    labels = np.zeros(n_samples)
    for index in range(n_samples):
        bottom_heavy = index % 2 == 0
        labels[index] = 1.0 if bottom_heavy else 0.0
        n_points = rng.integers(30, 80)
        if bottom_heavy:
            row_centers = rng.normal(rows * 0.75, rows * 0.1, size=n_points)
        else:
            row_centers = rng.normal(rows * 0.25, rows * 0.1, size=n_points)
        col_centers = rng.uniform(0, cols, size=n_points)
        for row, col in zip(row_centers, col_centers):
            r = int(np.clip(row, 0, rows - 1))
            c = int(np.clip(col, 0, cols - 1))
            maps[index, r, c, 0] += 1.0
        maximum = maps[index].max()
        if maximum > 0:
            maps[index] /= maximum
    return maps, labels


def pretrain_on_synthetic_regions(
    network: Sequential,
    n_samples: int = 64,
    epochs: int = 3,
    input_shape: tuple[int, int] = HEATMAP_INPUT_SHAPE,
    random_state: Optional[int] = 0,
) -> Sequential:
    """Pre-train the CNN on the synthetic screen-region task (in place)."""
    rng = np.random.default_rng(random_state)
    maps, labels = _synthetic_region_maps(n_samples, input_shape, rng)
    network.fit(maps, labels, epochs=epochs, batch_size=16, random_state=random_state)
    return network
