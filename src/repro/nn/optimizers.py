"""Optimizers: Adam (the paper's choice, eta=0.001, beta1=0.9, beta2=0.999) and SGD."""

from __future__ import annotations

import numpy as np


def _encode_slot_keys(slots: dict[tuple[int, str], np.ndarray]) -> dict[str, np.ndarray]:
    """Flatten ``(layer_index, parameter_name)`` slot keys to strings.

    The string form (``"0:W_f"``) is what :meth:`Optimizer.get_state`
    exposes, so optimizer state survives JSON/npz artifact round-trips.
    """
    return {f"{index}:{name}": value for (index, name), value in slots.items()}


def _decode_slot_keys(state: dict[str, np.ndarray]) -> dict[tuple[int, str], np.ndarray]:
    """Invert :func:`_encode_slot_keys`."""
    slots: dict[tuple[int, str], np.ndarray] = {}
    for key, value in state.items():
        index, _, name = key.partition(":")
        slots[(int(index), name)] = np.asarray(value, dtype=float)
    return slots


class Optimizer:
    """Updates layer parameters in place from accumulated gradients."""

    def step(self, layers) -> None:
        """Apply one update to every parameterised layer."""
        raise NotImplementedError

    def get_state(self) -> dict:
        """The optimizer's mutable state as JSON/array-friendly values.

        Returns a dict of plain scalars and ``{"index:param": array}``
        sub-dicts; restoring it with :meth:`set_state` resumes training
        exactly where a checkpoint left off.  Stateless optimizers return
        an empty dict.
        """
        return {}

    def set_state(self, state: dict) -> None:
        """Restore state captured with :meth:`get_state`."""


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def step(self, layers) -> None:
        for layer_index, layer in enumerate(layers):
            for name, parameter in layer.params.items():
                gradient = layer.grads.get(name)
                if gradient is None:
                    continue
                key = (layer_index, name)
                velocity = self._velocity.get(key)
                if velocity is None:
                    velocity = np.zeros_like(parameter)
                velocity = self.momentum * velocity - self.learning_rate * gradient
                self._velocity[key] = velocity
                parameter += velocity

    def get_state(self) -> dict:
        return {"velocity": _encode_slot_keys(self._velocity)}

    def set_state(self, state: dict) -> None:
        self._velocity = _decode_slot_keys(state.get("velocity", {}))


class Adam(Optimizer):
    """Adam optimiser with the paper's default hyper-parameters."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment: dict[tuple[int, str], np.ndarray] = {}
        self._second_moment: dict[tuple[int, str], np.ndarray] = {}
        self._t = 0

    def step(self, layers) -> None:
        self._t += 1
        for layer_index, layer in enumerate(layers):
            for name, parameter in layer.params.items():
                gradient = layer.grads.get(name)
                if gradient is None:
                    continue
                key = (layer_index, name)
                m = self._first_moment.get(key, np.zeros_like(parameter))
                v = self._second_moment.get(key, np.zeros_like(parameter))
                m = self.beta1 * m + (1.0 - self.beta1) * gradient
                v = self.beta2 * v + (1.0 - self.beta2) * gradient**2
                self._first_moment[key] = m
                self._second_moment[key] = v
                m_hat = m / (1.0 - self.beta1**self._t)
                v_hat = v / (1.0 - self.beta2**self._t)
                parameter -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def get_state(self) -> dict:
        return {
            "t": self._t,
            "first_moment": _encode_slot_keys(self._first_moment),
            "second_moment": _encode_slot_keys(self._second_moment),
        }

    def set_state(self, state: dict) -> None:
        self._t = int(state.get("t", 0))
        self._first_moment = _decode_slot_keys(state.get("first_moment", {}))
        self._second_moment = _decode_slot_keys(state.get("second_moment", {}))
