"""Optimizers: Adam (the paper's choice, eta=0.001, beta1=0.9, beta2=0.999) and SGD."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Updates layer parameters in place from accumulated gradients."""

    def step(self, layers) -> None:
        """Apply one update to every parameterised layer."""
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def step(self, layers) -> None:
        for layer_index, layer in enumerate(layers):
            for name, parameter in layer.params.items():
                gradient = layer.grads.get(name)
                if gradient is None:
                    continue
                key = (layer_index, name)
                velocity = self._velocity.get(key)
                if velocity is None:
                    velocity = np.zeros_like(parameter)
                velocity = self.momentum * velocity - self.learning_rate * gradient
                self._velocity[key] = velocity
                parameter += velocity


class Adam(Optimizer):
    """Adam optimiser with the paper's default hyper-parameters."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment: dict[tuple[int, str], np.ndarray] = {}
        self._second_moment: dict[tuple[int, str], np.ndarray] = {}
        self._t = 0

    def step(self, layers) -> None:
        self._t += 1
        for layer_index, layer in enumerate(layers):
            for name, parameter in layer.params.items():
                gradient = layer.grads.get(name)
                if gradient is None:
                    continue
                key = (layer_index, name)
                m = self._first_moment.get(key, np.zeros_like(parameter))
                v = self._second_moment.get(key, np.zeros_like(parameter))
                m = self.beta1 * m + (1.0 - self.beta1) * gradient
                v = self.beta2 * v + (1.0 - self.beta2) * gradient**2
                self._first_moment[key] = m
                self._second_moment[key] = v
                m_hat = m / (1.0 - self.beta1**self._t)
                v_hat = v / (1.0 - self.beta2**self._t)
                parameter -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
