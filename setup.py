"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package installs in fully offline
environments (no build isolation, no wheel fetch): ``pip install -e .``.
"""

from setuptools import setup

setup()
